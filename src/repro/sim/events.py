"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-based design: simulation *processes*
are Python generators that ``yield`` :class:`Event` objects and are resumed
when those events fire.  Three event states exist:

``PENDING``
    created, not yet scheduled to fire;
``TRIGGERED``
    scheduled on the environment's event heap with a value or an exception;
``PROCESSED``
    callbacks have run.

Only :class:`Process`, :class:`Timeout`, :class:`Condition` and the resource
request events from :mod:`repro.sim.resources` are usually instantiated
directly by user code; everything else goes through the convenience methods
on :class:`repro.sim.core.Environment`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.core import Environment

PENDING = 0
TRIGGERED = 1
PROCESSED = 2

#: Default scheduling priority; lower fires first at equal times.
NORMAL = 1
#: Priority used for "immediate" wakeups that must precede normal events.
URGENT = 0


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The interrupt ``cause`` (an arbitrary object supplied by the caller of
    :meth:`Process.interrupt`) is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        """Arbitrary object describing why the process was interrupted."""
        return self.args[0]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event carries either a *value* (on success) or an *exception* (on
    failure).  Waiting processes are stored in :attr:`callbacks` and invoked,
    in registration order, when the environment pops the event off its heap.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING

    def __repr__(self) -> str:
        status = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {status[self._state]} at {id(self):#x}>"

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception on failure)."""
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire by raising ``exception`` in waiters."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    # -- internal -----------------------------------------------------------
    def _mark_processed(self) -> list[Callable[["Event"], None]]:
        """Flip to PROCESSED and detach the callback list (kernel use only)."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks or [], None
        return callbacks


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        env.schedule(self, delay=delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process *is itself an event* that fires when the generator returns
    (with its return value) or raises (failing with the exception).  That
    allows processes to wait on each other simply by yielding a process.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick the process off via an already-triggered initialisation event.
        init = Event(env)
        init._ok = True
        init._state = TRIGGERED
        init.callbacks.append(self._resume)
        env.schedule(init, delay=0.0, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return self._state == PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event is
        *not* cancelled; its eventual value is simply ignored by this
        process) and resumes with ``Interrupt(cause)`` raised at the yield
        statement.  Interrupting a finished process is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._state = TRIGGERED
        wakeup.callbacks.append(self._resume)
        # Defuse the old target: drop our callback so we do not resume twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.env.schedule(wakeup, delay=0.0, priority=URGENT)

    # -- internal -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired ``event`` (kernel use only)."""
        env = self.env
        env._active_proc = self
        while True:
            try:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    exc = event.value
                    if isinstance(exc, Interrupt):
                        next_event = self._generator.throw(exc)
                    else:
                        next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as stop:
                self._target = None
                env._active_proc = None
                if self._state == PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as err:
                self._target = None
                env._active_proc = None
                if self._state == PENDING:
                    self.fail(err)
                    return
                raise

            if not isinstance(next_event, Event):
                env._active_proc = None
                self._generator.throw(
                    SimulationError(f"process yielded a non-event: {next_event!r}")
                )
                return
            if next_event.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            env._active_proc = None
            return


class Condition(Event):
    """Composite event over several child events.

    ``Condition(env, events, wait_all=True)`` fires once *all* children have
    fired (``AllOf``); with ``wait_all=False`` it fires as soon as *any*
    child fires (``AnyOf``).  The value is a dict mapping each fired child to
    its value.  A failing child fails the condition with the same exception.
    """

    __slots__ = ("_events", "_wait_all")

    def __init__(self, env: "Environment", events: Iterable[Event], wait_all: bool) -> None:
        super().__init__(env)
        self._events = list(events)
        self._wait_all = wait_all
        for ev in self._events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition over non-event: {ev!r}")
            if ev.env is not env:
                raise SimulationError("condition events belong to different environments")
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if self._state == PENDING and self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        if self._wait_all:
            return all(ev.processed and ev.ok for ev in self._events)
        return any(ev.processed and ev.ok for ev in self._events)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self._events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event.ok:
            self.fail(event.value)
        elif self._satisfied():
            self.succeed(self._collect())


def all_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Return an event that fires when every event in ``events`` has fired."""
    return Condition(env, events, wait_all=True)


def any_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Return an event that fires when the first event in ``events`` fires."""
    return Condition(env, events, wait_all=False)
