"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-based design: simulation *processes*
are Python generators that ``yield`` :class:`Event` objects and are resumed
when those events fire.  Three event states exist:

``PENDING``
    created, not yet scheduled to fire;
``TRIGGERED``
    scheduled on the environment's event heap with a value or an exception;
``PROCESSED``
    callbacks have run.

Only :class:`Process`, :class:`Timeout`, :class:`Condition` and the resource
request events from :mod:`repro.sim.resources` are usually instantiated
directly by user code; everything else goes through the convenience methods
on :class:`repro.sim.core.Environment`.

Performance notes
-----------------
Everything in this module sits on the simulation hot path — every request,
timeout, and pool grant in an experiment flows through it millions of
times — so the implementations deliberately trade a little repetition for
speed: triggering pushes onto the environment heap directly instead of
going through :meth:`Environment.schedule`, :class:`Timeout` initialises
its slots inline rather than chaining ``super().__init__``, and
:meth:`Process._resume` reads the private ``_ok``/``_value`` slots instead
of the public properties.  A new :class:`Process` consumes one heap entry
(its own first resume, scheduled directly) and allocates **no**
initialisation event.

Every direct push site honours the environment's pluggable scheduler: when
``env._heap`` is ``None`` the entry goes through ``env._scheduler.push``
instead (see :mod:`repro.sim.calqueue`); the default heap mode pays only a
single extra ``is None`` test per push.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_INF = float("inf")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.core import Environment

PENDING = 0
TRIGGERED = 1
PROCESSED = 2

#: Default scheduling priority; lower fires first at equal times.
NORMAL = 1
#: Priority used for "immediate" wakeups that must precede normal events.
URGENT = 0


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The interrupt ``cause`` (an arbitrary object supplied by the caller of
    :meth:`Process.interrupt`) is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        """Arbitrary object describing why the process was interrupted."""
        return self.args[0]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event carries either a *value* (on success) or an *exception* (on
    failure).  Waiting processes are stored in :attr:`callbacks` and invoked,
    in registration order, when the environment pops the event off its heap.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING

    def __repr__(self) -> str:
        status = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {status[self._state]} at {id(self):#x}>"

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception on failure)."""
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        heap = env._heap
        if heap is None:
            env._scheduler.push((env._now, priority, seq, self))
        else:
            heappush(heap, (env._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire by raising ``exception`` in waiters."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        heap = env._heap
        if heap is None:
            env._scheduler.push((env._now, priority, seq, self))
        else:
            heappush(heap, (env._now, priority, seq, self))
        return self

    # -- internal -----------------------------------------------------------
    def _mark_processed(self) -> list[Callable[["Event"], None]]:
        """Flip to PROCESSED and detach the callback list (kernel use only)."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks or [], None
        return callbacks


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # Single chained comparison rejects negative, NaN *and* inf delays:
        # a bare ``delay < 0`` lets NaN through (every NaN comparison is
        # false) and a NaN timestamp silently corrupts queue ordering.
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"negative or non-finite timeout delay: {delay!r}"
            )
        # Inline Event.__init__ plus direct heap insertion: timeouts are the
        # single most allocated event type, so they skip two method calls.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.delay = delay
        env._seq = seq = env._seq + 1
        heap = env._heap
        if heap is None:
            env._scheduler.push((env._now + delay, NORMAL, seq, self))
        else:
            heappush(heap, (env._now + delay, NORMAL, seq, self))


class _InitSentinel:
    """Stand-in "event" a process's very first resume is driven with.

    It only needs the two slots :meth:`Process._resume` reads; using one
    shared immutable instance lets a new process go straight onto the heap
    without allocating a per-process initialisation :class:`Event`.
    """

    __slots__ = ()
    _ok = True
    _value = None


_INIT = _InitSentinel()


class Process(Event):
    """A running simulation process wrapping a generator.

    The process *is itself an event* that fires when the generator returns
    (with its return value) or raises (failing with the exception).  That
    allows processes to wait on each other simply by yielding a process.

    A process's body must yield :class:`Event` instances only.  Yielding
    anything else deterministically *fails the process* with a
    :class:`SimulationError` (after throwing that error into the generator
    so ``finally`` blocks run); the error then propagates to whoever waits
    on the process, or out of :meth:`Environment.run` if nobody does.
    """

    __slots__ = ("_generator", "_target", "_defused")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._defused = False
        # Schedule the first resume directly: the still-PENDING process on
        # the heap *is* the placeholder (Environment.step recognises it and
        # calls _start).  No initialisation Event is allocated, and the
        # sequence-number consumption matches the old init-event scheme
        # exactly, so same-seed event ordering is unchanged.
        env._seq = seq = env._seq + 1
        heap = env._heap
        if heap is None:
            env._scheduler.push((env._now, URGENT, seq, self))
        else:
            heappush(heap, (env._now, URGENT, seq, self))

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return self._state == PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event is
        *not* cancelled; its eventual value is simply ignored by this
        process) and resumes with ``Interrupt(cause)`` raised at the yield
        statement.  Interrupting a finished process is an error.

        Interrupting a process that has **not started yet** (spawned in the
        same step) defuses its queued first resume: the body never runs and
        the process fails with the :class:`Interrupt` — it is *not* started
        and interrupted at the same timestamp.
        """
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already terminated")
        env = self.env
        if env._active_proc is self:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None:
            # Defuse the old target: drop our callback so we do not resume
            # twice.
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
        else:
            # Not yet started: defuse the queued first resume so the
            # generator is not started *and* interrupted in one step.  The
            # placeholder entry stays queued for lazy deletion; the
            # environment's dead count keeps peek()/queue_size truthful.
            self._defused = True
            env._dead += 1
        wakeup = Event(env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._state = TRIGGERED
        wakeup.callbacks.append(self._resume)
        env._seq = seq = env._seq + 1
        heap = env._heap
        if heap is None:
            env._scheduler.push((env._now, URGENT, seq, wakeup))
        else:
            heappush(heap, (env._now, URGENT, seq, wakeup))

    # -- internal -----------------------------------------------------------
    def _start(self) -> None:
        """First resume, invoked by the kernel's dispatch loop."""
        if self._defused:
            # The dead placeholder just left the queue: settle the lazy-
            # deletion ledger (calendar-queue purges go through on_purge
            # instead and never reach here).
            self.env._dead -= 1
        else:
            self._resume(_INIT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired ``event`` (kernel use only)."""
        if self._state != PENDING:
            # Stale wakeup for a process that already finished (e.g. a second
            # interrupt delivered after the first one killed it): ignore.
            return
        env = self.env
        env._active_proc = self
        gen = self._generator
        ok = event._ok
        value = event._value
        while True:
            try:
                if ok:
                    next_event = gen.send(value)
                else:
                    next_event = gen.throw(value)
            except StopIteration as stop:
                self._target = None
                env._active_proc = None
                if self._state == PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as err:
                self._target = None
                env._active_proc = None
                if self._state == PENDING:
                    self.fail(err)
                    return
                raise

            if isinstance(next_event, Event):
                callbacks = next_event.callbacks
                if callbacks is None:
                    # Already processed: resume immediately with its value.
                    ok = next_event._ok
                    value = next_event._value
                    continue
                callbacks.append(self._resume)
                self._target = next_event
                env._active_proc = None
                return

            # Yielded a non-event: fail the process deterministically.  The
            # error is thrown into the generator first so cleanup runs; the
            # process fails with the SimulationError no matter whether the
            # generator catches it, re-raises, or raises something else.
            error = SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
            self._target = None
            env._active_proc = None
            try:
                gen.throw(error)
                # The generator swallowed the error and yielded again —
                # shut it down for good.
                gen.close()
            except BaseException:  # repro: noqa[DCM010] -- the process fails
                # with the original SimulationError below; whatever the dying
                # generator raised during cleanup is intentionally subordinate.
                pass
            if self._state == PENDING:
                self.fail(error)
            return


class Condition(Event):
    """Composite event over several child events.

    ``Condition(env, events, wait_all=True)`` fires once *all* children have
    fired (``AllOf``); with ``wait_all=False`` it fires as soon as *any*
    child fires (``AnyOf``).  The value is a dict mapping each fired child to
    its value.  A failing child fails the condition with the same exception.

    An empty ``AllOf`` is vacuously true and fires immediately with ``{}``.
    An empty ``AnyOf`` could never fire and raises :class:`SimulationError`
    at construction instead of deadlocking.
    """

    __slots__ = ("_events", "_wait_all", "_unfired")

    def __init__(self, env: "Environment", events: Iterable[Event], wait_all: bool) -> None:
        super().__init__(env)
        self._events = list(events)
        self._wait_all = wait_all
        for ev in self._events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition over non-event: {ev!r}")
            if ev.env is not env:
                raise SimulationError("condition events belong to different environments")
        if not self._events and not wait_all:
            raise SimulationError(
                "any_of() over an empty event list can never fire"
            )
        # Count-down instead of re-scanning every child on each firing:
        # _check decrements once per fired child, so an AllOf completes when
        # the counter hits zero and an AnyOf on the first decrement.
        self._unfired = len(self._events)
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if self._state == PENDING and self._unfired == 0:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev._state == PROCESSED and ev._ok
        }

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._unfired -= 1
        if not self._wait_all or self._unfired == 0:
            self.succeed(self._collect())


def all_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Return an event that fires when every event in ``events`` has fired.

    ``all_of([])`` is vacuously satisfied and fires immediately with ``{}``.
    """
    return Condition(env, events, wait_all=True)


def any_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Return an event that fires when the first event in ``events`` fires.

    ``any_of([])`` raises :class:`SimulationError`: with no children, the
    condition could never fire and would deadlock the waiting process.
    """
    return Condition(env, events, wait_all=False)
