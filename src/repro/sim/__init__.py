"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based kernel in the SimPy tradition:
:class:`~repro.sim.core.Environment` drives an event heap; processes are
generators yielding :class:`~repro.sim.events.Event` objects;
:class:`~repro.sim.resources.Resource` provides FIFO counted semaphores with
runtime resizing; and :class:`~repro.sim.processor.ContentionProcessor`
implements the state-dependent processor sharing that embodies the paper's
multi-threading service-time model.
"""

from repro.sim.calqueue import CalendarQueue
from repro.sim.core import SCHEDULERS, Environment
from repro.sim.events import (
    Condition,
    Event,
    Interrupt,
    Process,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.processor import ContentionProcessor
from repro.sim.resources import Acquire, Resource, Store, StoreGet
from repro.sim.rng import RandomStreams

__all__ = [
    "Acquire",
    "CalendarQueue",
    "Condition",
    "ContentionProcessor",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SCHEDULERS",
    "Store",
    "StoreGet",
    "Timeout",
    "all_of",
    "any_of",
]
