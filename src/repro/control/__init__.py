"""Controllers and actuators: DCM and the EC2-AutoScale baseline.

Both run the same "quick start / slow turn off" VM-level threshold policy;
DCM adds the second actuation level — model-driven soft-resource
re-allocation through the APP-agent.
"""

from repro.control.actuators import ActuatorAction, AppAgent, VMAgent
from repro.control.base import BaseAutoScaleController, ControlEvent
from repro.control.dcm import DCMController
from repro.control.ec2 import EC2AutoScaleController
from repro.control.predictive import PredictiveDCMController, TrendForecaster
from repro.control.static import StaticProvisioningController
from repro.control.policy import (
    SCALE_IN,
    SCALE_OUT,
    PolicyStateTracker,
    ScalingPolicy,
    TierScalingState,
)

__all__ = [
    "ActuatorAction",
    "AppAgent",
    "BaseAutoScaleController",
    "ControlEvent",
    "DCMController",
    "EC2AutoScaleController",
    "PredictiveDCMController",
    "PolicyStateTracker",
    "SCALE_IN",
    "SCALE_OUT",
    "ScalingPolicy",
    "StaticProvisioningController",
    "TrendForecaster",
    "TierScalingState",
    "VMAgent",
]
