"""DCM: the two-level dynamic concurrency management controller.

Level 1 (inherited): the same threshold-driven VM scaling as the baseline.
Level 2 (this class): after every VM-level action — and periodically from
online refits — recompute the optimal soft-resource allocation from the
concurrency-aware model and apply it to *all* live servers through the
APP-agent:

* per-Tomcat thread pools sized so the tier operates at its knee,
* per-Tomcat DB connection pools sized so the *total* concurrency reaching
  the MySQL tier equals its knee times the number of DB servers.

The estimator is typically seeded with offline-trained models (the paper
trains with JMeter first, Section V-A) and keeps refitting online from the
metric stream (Section III-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.control.actuators import AppAgent, VMAgent
from repro.control.base import BaseAutoScaleController
from repro.control.policy import ScalingPolicy
from repro.errors import ModelError
from repro.model.online import OnlineModelEstimator
from repro.model.optimizer import AllocationPlan, AllocationPlanner
from repro.monitor.collector import MetricCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.server import TierServer
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment


class DCMController(BaseAutoScaleController):
    """VM scaling + model-driven soft-resource re-allocation."""

    name = "dcm"

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        collector: MetricCollector,
        vm_agent: VMAgent,
        app_agent: AppAgent,
        estimator: OnlineModelEstimator,
        planner: Optional[AllocationPlanner] = None,
        policy: Optional[ScalingPolicy] = None,
        tiers: Tuple[str, ...] = ("app", "db"),
        refit_every_periods: int = 4,
        apply_initial_plan: bool = True,
        online_refit: bool = True,
    ) -> None:
        super().__init__(env, system, collector, vm_agent, policy, tiers)
        self.app_agent = app_agent
        self.estimator = estimator
        self.planner = planner or AllocationPlanner(
            apache_threads=system.soft.apache_threads
        )
        self.refit_every_periods = refit_every_periods
        self.online_refit = online_refit
        self._periods_seen = 0
        self.last_plan: Optional[AllocationPlan] = None
        if apply_initial_plan:
            self.reallocate("initial")

    # -- level 2: concurrency management ----------------------------------------------
    def measured_active_fraction(self) -> Optional[float]:
        """Tomcat CPU concurrency / busy threads, from recent metrics.

        ``None`` when there is no usable signal yet (e.g. idle system).
        """
        since = self.env.now - 4 * self.policy.control_period
        conc_sum = 0.0
        busy_sum = 0.0
        for name in self.collector.servers("app"):
            for record in self.collector.recent(name, since):
                conc_sum += record.get("concurrency") * record.window
                busy_sum += record.get("pool_occupancy") * record.window
        if busy_sum <= 1e-9 or conc_sum <= 1e-9:
            return None
        # Clamp: extreme momentary ratios (an idle system, or one blocked
        # solid on the DB) would swing the thread-pool target wildly.
        return max(0.3, min(0.75, conc_sum / busy_sum))

    def compute_plan(self) -> AllocationPlan:
        """The allocation for the *current* accepting topology.

        True server counts, no clamping: a full-tier outage (zero accepting
        servers) makes the planner raise ``ModelError``, and ``reallocate``
        skips the period — planning "per server" load against a phantom
        server sized the pools for a topology that does not exist.
        """
        return self.planner.plan(
            tomcat_model=self.estimator.model("app"),
            mysql_model=self.estimator.model("db"),
            app_servers=len(self.system.active_servers("app")),
            db_servers=len(self.system.active_servers("db")),
            active_fraction=self.measured_active_fraction(),
        )

    def _materially_different(self, plan: AllocationPlan) -> bool:
        """Whether ``plan`` differs enough from the last applied one.

        Topology-driven changes always apply; measurement-driven drift in
        the thread/connection targets must exceed 20 % to avoid flapping
        pools on active-fraction noise.
        """
        if self.last_plan is None:
            return True
        old, new = self.last_plan, plan
        if (old.app_servers, old.db_servers) != (new.app_servers, new.db_servers):
            return True
        def rel(a: int, b: int) -> float:
            # Symmetric relative change: a 10->8 shrink and an 8->10 grow
            # score identically, so the hysteresis band has no direction
            # bias.
            return abs(a - b) / max(a, b, 1)
        return (
            rel(old.soft.tomcat_threads, new.soft.tomcat_threads) > 0.2
            or rel(old.soft.db_connections, new.soft.db_connections) > 0.2
        )

    def reallocate(self, reason: str) -> Optional[AllocationPlan]:
        """Recompute and apply the soft allocation; logs a control event."""
        try:
            plan = self.compute_plan()
        except ModelError as err:
            self._log("all", "reallocate_skipped", f"{reason}: {err}")
            return None
        if plan.soft != self.system.soft and self._materially_different(plan):
            self.app_agent.apply(plan.soft)
            self._log("all", "reallocate", f"{reason}: {plan.soft}")
            self.last_plan = plan
        elif self.last_plan is None:
            self.last_plan = plan
        return plan

    # -- hooks ----------------------------------------------------------------------
    def new_server_config(self, tier: str) -> dict:
        """Give new servers the pool sizes planned for the *post-scaling*
        topology, so they join already correctly sized."""
        try:
            app_n = len(self.system.active_servers("app"))
            db_n = len(self.system.active_servers("db"))
            plan = self.planner.plan(
                tomcat_model=self.estimator.model("app"),
                mysql_model=self.estimator.model("db"),
                app_servers=app_n + (1 if tier == "app" else 0),
                db_servers=db_n + (1 if tier == "db" else 0),
                active_fraction=self.measured_active_fraction(),
            )
        except ModelError:
            return {}
        if tier == "app":
            return {
                "threads": plan.soft.tomcat_threads,
                "db_connections": plan.soft.db_connections,
            }
        return {}

    def on_scaled(self, tier: str, direction: str, server: Optional["TierServer"]) -> None:
        """Level 2 follows level 1: re-balance soft resources immediately."""
        self.reallocate(f"{tier}_{direction}")

    def on_period_end(self, now: float) -> None:
        """Periodic online refits; re-apply the plan when knees move."""
        self._periods_seen += 1
        if not self.online_refit:
            return
        if self._periods_seen % self.refit_every_periods:
            return
        changed = False
        for tier in self.tiers:
            result = self.estimator.refit(tier, now)
            if result is not None:
                self._log(tier, "model_refit", result.summary())
                changed = True
        if changed:
            self.reallocate("refit")
