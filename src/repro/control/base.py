"""Shared control loop for both autoscalers.

Every ``control_period`` seconds the controller drains the metric stream,
computes per-tier statistics over the elapsed period, runs the threshold
policy, and launches VM-agent actions.  Subclasses customise (a) the soft
configuration given to newly created servers and (b) what happens after a
scaling action or at period end — that delta *is* the difference between
EC2-AutoScale and DCM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.control.actuators import VMAgent
from repro.control.policy import SCALE_IN, SCALE_OUT, PolicyStateTracker, ScalingPolicy
from repro.errors import CapacityError, ControlError
from repro.monitor.collector import MetricCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.server import TierServer
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment


@dataclass(frozen=True)
class ControlEvent:
    """One controller decision/outcome, for the Fig 5 timelines."""

    time: float
    tier: str
    kind: str  # "scale_out_started", "scale_out_done", "scale_in_started", ...
    detail: str = ""


class BaseAutoScaleController:
    """Threshold-driven VM scaling shared by EC2-AutoScale and DCM."""

    name = "base"

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        collector: MetricCollector,
        vm_agent: VMAgent,
        policy: Optional[ScalingPolicy] = None,
        tiers: Tuple[str, ...] = ("app", "db"),
    ) -> None:
        self.env = env
        self.system = system
        self.collector = collector
        self.vm_agent = vm_agent
        self.policy = policy or ScalingPolicy()
        self.tiers = tiers
        self.states = PolicyStateTracker()
        self.events: List[ControlEvent] = []
        #: (time, tier, accepting-server count) snapshots, one per event.
        self.counts_log: List[Tuple[float, str, int]] = [
            (env.now, tier, len(system.active_servers(tier))) for tier in tiers
        ]
        self._running = True
        self._process = env.process(self._run())

    # -- lifecycle -----------------------------------------------------------------
    def stop(self) -> None:
        """Stop the control loop at its next tick."""
        self._running = False

    def _log(self, tier: str, kind: str, detail: str = "") -> None:
        self.events.append(ControlEvent(self.env.now, tier, kind, detail))
        if tier in self.tiers:
            self.counts_log.append(
                (self.env.now, tier, len(self.system.active_servers(tier)))
            )

    # -- the loop -------------------------------------------------------------------
    def _run(self):
        while self._running:
            yield self.env.timeout(self.policy.control_period)
            if not self._running:
                break
            self.collector.drain()
            now = self.env.now
            for tier in self.tiers:
                stats = self.collector.tier_stats(
                    tier, since=now - self.policy.control_period
                )
                servers = len(self.system.active_servers(tier))
                state = self.states.state(tier)
                decision = self.policy.decide(stats, servers, state)
                if decision == SCALE_OUT:
                    state.pending_action = True
                    self._log(tier, "scale_out_started",
                              f"util={stats.mean_cpu_utilization:.2f}")
                    self.env.process(self._scale_out(tier))
                elif decision == SCALE_IN:
                    state.pending_action = True
                    self._log(tier, "scale_in_started",
                              f"util={stats.mean_cpu_utilization:.2f}")
                    self.env.process(self._scale_in(tier))
            self.on_period_end(now)
        return len(self.events)

    def _scale_out(self, tier: str):
        state = self.states.state(tier)
        try:
            server = yield self.vm_agent.scale_out(
                tier, **self.new_server_config(tier)
            )
        except (CapacityError, ControlError) as err:
            self._log(tier, "scale_out_failed", str(err))
            return
        finally:
            state.pending_action = False
        self._log(tier, "scale_out_done", server.name)
        self.on_scaled(tier, "out", server)

    def _scale_in(self, tier: str):
        state = self.states.state(tier)
        try:
            name = yield self.vm_agent.scale_in(tier)
        except ControlError as err:
            self._log(tier, "scale_in_failed", str(err))
            return
        finally:
            state.pending_action = False
        self.collector.forget(name)
        self._log(tier, "scale_in_done", name)
        self.on_scaled(tier, "in", None)

    # -- subclass hooks ---------------------------------------------------------------
    def new_server_config(self, tier: str) -> dict:
        """Factory kwargs for a new server of ``tier``.

        The base (hardware-only) behaviour: empty — the topology applies its
        *static* soft defaults, which is exactly the paper's failure mode.
        """
        return {}

    def on_scaled(self, tier: str, direction: str, server: Optional["TierServer"]) -> None:
        """Called after a scaling action completes."""

    def on_period_end(self, now: float) -> None:
        """Called at the end of every control period."""

    # -- reporting -------------------------------------------------------------------
    def scaling_timeline(self, tier: str) -> List[Tuple[float, int]]:
        """``(time, accepting server count)`` change points for ``tier``,
        from the snapshots taken at every logged control event."""
        timeline: List[Tuple[float, int]] = []
        for t, tr, count in self.counts_log:
            if tr != tier:
                continue
            if timeline and timeline[-1][1] == count:
                continue
            timeline.append((t, count))
        return timeline or [(0.0, len(self.system.active_servers(tier)))]
