"""Static over-provisioning baseline (the paper's motivating strawman).

The introduction frames the whole problem: "over-provisioning only for peak
workload can waste significant amount of computing resources and power."
This controller is that strawman, made concrete so the claim is measurable:
it provisions a fixed per-tier server count at start-up — sized for the
trace's peak — applies one soft-resource allocation, and never scales.

Under a bursty trace it matches DCM's stability (capacity is always there)
at roughly ``peak/mean`` times the VM-seconds — the efficiency gap
``bench_overprovision.py`` quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.control.actuators import AppAgent, VMAgent
from repro.control.base import BaseAutoScaleController
from repro.errors import ControlError
from repro.model.optimizer import AllocationPlanner
from repro.model.service_time import ConcurrencyModel
from repro.monitor.collector import MetricCollector
from repro.ntier.softconfig import SoftResourceConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment


class StaticProvisioningController(BaseAutoScaleController):
    """Provision for peak once; never scale.

    Parameters
    ----------
    target_servers:
        Desired per-tier accepting server counts, e.g. ``{"app": 3, "db": 3}``.
    models:
        Optional per-tier concurrency models; when given, the soft
        allocation for the static fleet is planned once (DCM-style sizing,
        statically applied).  Without models the deployment's existing soft
        configuration stands.
    """

    name = "static"

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        collector: MetricCollector,
        vm_agent: VMAgent,
        target_servers: Dict[str, int],
        app_agent: Optional[AppAgent] = None,
        models: Optional[Dict[str, ConcurrencyModel]] = None,
        planner: Optional[AllocationPlanner] = None,
    ) -> None:
        for tier, count in target_servers.items():
            if tier not in VMAgent.SCALABLE_TIERS:
                raise ControlError(f"tier {tier!r} is not scalable")
            if count < 1:
                raise ControlError(f"{tier}: target must be >= 1, got {count}")
        super().__init__(env, system, collector, vm_agent, tiers=tuple(target_servers))
        self.target_servers = dict(target_servers)
        self.app_agent = app_agent
        self.models = models
        self.planner = planner or AllocationPlanner(
            apache_threads=system.soft.apache_threads
        )
        self._provisioned = False
        env.process(self._provision_to_target())

    # The control loop inherited from the base would evaluate thresholds;
    # neutralise it: static means static.
    def _run(self):
        while self._running:
            yield self.env.timeout(self.policy.control_period)
        return 0

    def _static_soft(self) -> Optional[SoftResourceConfig]:
        if self.models is None:
            return None
        plan = self.planner.plan(
            tomcat_model=self.models["app"],
            mysql_model=self.models["db"],
            app_servers=self.target_servers.get("app", 1),
            db_servers=self.target_servers.get("db", 1),
        )
        return plan.soft

    def _provision_to_target(self):
        """Bring every tier up to its target count, then size soft resources."""
        soft = self._static_soft()
        pending = []
        for tier, target in self.target_servers.items():
            current = len(self.system.active_servers(tier))
            for _ in range(target - current):
                kwargs = {}
                if soft is not None and tier == "app":
                    kwargs = {
                        "threads": soft.tomcat_threads,
                        "db_connections": soft.db_connections,
                    }
                pending.append(self.vm_agent.scale_out(tier, **kwargs))
                self._log(tier, "static_provision_started")
        if pending:
            yield self.env.all_of(pending)
        if soft is not None and self.app_agent is not None:
            self.app_agent.apply(soft)
            self._log("all", "static_soft_applied", str(soft))
        self._provisioned = True
        for tier in self.target_servers:
            self._log(tier, "static_provision_done",
                      str(len(self.system.active_servers(tier))))

    @property
    def provisioned(self) -> bool:
        """Whether the static fleet has fully booted."""
        return self._provisioned
