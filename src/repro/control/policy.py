"""Threshold scaling policy: "quick start but slow turn off" (Section V-B).

Both controllers share the same VM-level policy, taken from the paper:

* control period 15 s;
* scale **out** a tier as soon as its utilization exceeds the upper bound
  (80 %) during one control period — *quick start*;
* scale **in** only after the utilization stays below the lower bound
  (40 %) for three consecutive control periods — *slow turn off* (learned
  from the AutoScale work to avoid instability under bursty workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.monitor.collector import TierStats

#: Decision verdicts.
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"


@dataclass
class TierScalingState:
    """Mutable per-tier controller state."""

    consecutive_low: int = 0
    pending_action: bool = False  # a scale op for this tier is in flight


@dataclass(frozen=True)
class ScalingPolicy:
    """The threshold rules both controllers run at the VM level."""

    control_period: float = 15.0
    upper_threshold: float = 0.8
    lower_threshold: float = 0.4
    consecutive_low_periods: int = 3
    min_servers: int = 1
    max_servers: int = 4

    def __post_init__(self) -> None:
        if self.control_period <= 0:
            raise ConfigurationError("control_period must be positive")
        if not 0.0 < self.lower_threshold < self.upper_threshold <= 1.0:
            raise ConfigurationError("need 0 < lower < upper <= 1")
        if self.consecutive_low_periods < 1:
            raise ConfigurationError("consecutive_low_periods must be >= 1")
        if not 1 <= self.min_servers <= self.max_servers:
            raise ConfigurationError("need 1 <= min_servers <= max_servers")

    def decide(
        self, stats: Optional[TierStats], servers: int, state: TierScalingState
    ) -> Optional[str]:
        """One control-period decision for one tier.

        Mutates ``state`` (the consecutive-low counter) and returns
        :data:`SCALE_OUT`, :data:`SCALE_IN`, or ``None``.  While an action
        is pending (a VM booting or draining) no new decision is made, but
        the low-counter keeps accumulating so the paper's timing ("three
        consecutive periods") is preserved.
        """
        if stats is None:
            return None
        util = stats.mean_cpu_utilization
        if util > self.upper_threshold:
            state.consecutive_low = 0
            if state.pending_action or servers >= self.max_servers:
                return None
            return SCALE_OUT
        if util < self.lower_threshold:
            state.consecutive_low += 1
            if (
                state.consecutive_low >= self.consecutive_low_periods
                and not state.pending_action
                and servers > self.min_servers
            ):
                state.consecutive_low = 0
                return SCALE_IN
            return None
        state.consecutive_low = 0
        return None


class PolicyStateTracker:
    """Holds one :class:`TierScalingState` per tier."""

    def __init__(self) -> None:
        self._states: Dict[str, TierScalingState] = {}

    def state(self, tier: str) -> TierScalingState:
        """The (auto-created) state for ``tier``."""
        if tier not in self._states:
            self._states[tier] = TierScalingState()
        return self._states[tier]
