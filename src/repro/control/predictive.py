"""Predictive extension: trend-based proactive VM scaling.

The paper's related-work section notes that "predictive approaches could
avoid the long setup time and achieve good performance when the workload
has intrinsic patterns", while reactive approaches handle unpredictable
bursts; "our work complements both approaches".  This module implements
that complement: a DCM variant whose VM level acts on a *forecast* of each
tier's utilization one boot-time ahead, so capacity arrives when the ramp
needs it rather than 15–30 s late.  The second level (concurrency
management) is inherited unchanged — soft resources are re-planned no
matter which signal triggered the hardware.

The forecaster is deliberately simple and classical: ordinary least-squares
linear trend over a sliding window of per-period utilization samples,
extrapolated ``lead_time`` seconds ahead and clamped to [0, 1.5].  When the
trend is flat the controller degrades gracefully to the reactive behaviour.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.control.dcm import DCMController
from repro.control.policy import SCALE_IN, SCALE_OUT
from repro.errors import ConfigurationError
from repro.monitor.collector import TierStats


class TrendForecaster:
    """Per-tier linear-trend utilization forecaster.

    Parameters
    ----------
    window:
        Number of most recent (time, utilization) samples kept per tier.
    lead_time:
        Forecast horizon in seconds (typically control period + VM boot).
    """

    def __init__(self, window: int = 6, lead_time: float = 30.0) -> None:
        if window < 2:
            raise ConfigurationError("forecaster window must be >= 2")
        if lead_time <= 0:
            raise ConfigurationError("lead_time must be positive")
        self.window = window
        self.lead_time = lead_time
        self._samples: Dict[str, Deque[Tuple[float, float]]] = defaultdict(
            lambda: deque(maxlen=self.window)
        )

    def observe(self, tier: str, time: float, utilization: float) -> None:
        """Record one per-period utilization sample."""
        self._samples[tier].append((time, utilization))

    def forecast(self, tier: str, at_time: float) -> Optional[float]:
        """Predicted utilization ``lead_time`` seconds after ``at_time``.

        ``None`` until at least two samples exist (no basis for a trend).
        """
        samples = self._samples.get(tier)
        if not samples or len(samples) < 2:
            return None
        times = np.array([t for t, _u in samples])
        utils = np.array([u for _t, u in samples])
        slope, intercept = np.polyfit(times, utils, 1)
        predicted = slope * (at_time + self.lead_time) + intercept
        return float(np.clip(predicted, 0.0, 1.5))


class PredictiveDCMController(DCMController):
    """DCM with a look-ahead VM level.

    The reactive policy still runs (it is the safety net for pattern-free
    bursts); additionally, when the *forecast* utilization crosses the
    upper threshold the scale-out fires early.  Scale-in stays purely
    reactive — shrinking on a forecast would undercut the paper's
    "slow turn off" lesson.
    """

    name = "predictive-dcm"

    def __init__(self, *args, forecaster: Optional[TrendForecaster] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.forecaster = forecaster or TrendForecaster(
            window=6,
            lead_time=self.policy.control_period
            + max(self.vm_agent.preparation_periods.values()),
        )
        self.predictive_scaleouts = 0
        self._started_at = self.env.now

    def _run(self):
        # Reimplements the control loop with the forecast hook; the body is
        # the base loop plus forecaster observation + predictive trigger.
        while self._running:
            yield self.env.timeout(self.policy.control_period)
            if not self._running:
                break
            self.collector.drain()
            now = self.env.now
            for tier in self.tiers:
                stats = self.collector.tier_stats(
                    tier, since=now - self.policy.control_period
                )
                if stats is not None and self._past_warmup(now):
                    # The very first period carries the population ramp-up
                    # transient; feeding it to the forecaster would fake a
                    # rising trend on perfectly flat workloads.
                    self.forecaster.observe(tier, now, stats.mean_cpu_utilization)
                servers = len(self.system.active_servers(tier))
                state = self.states.state(tier)
                decision = self.policy.decide(stats, servers, state)
                if decision is None and stats is not None:
                    decision = self._predictive_decision(tier, stats, servers, state, now)
                if decision == SCALE_OUT:
                    state.pending_action = True
                    self._log(tier, "scale_out_started",
                              f"util={stats.mean_cpu_utilization:.2f}")
                    self.env.process(self._scale_out(tier))
                elif decision == SCALE_IN:
                    state.pending_action = True
                    self._log(tier, "scale_in_started",
                              f"util={stats.mean_cpu_utilization:.2f}")
                    self.env.process(self._scale_in(tier))
            self.on_period_end(now)
        return len(self.events)

    def _past_warmup(self, now: float) -> bool:
        """Whether ``now`` is beyond the first (ramp-up) control period."""
        return now - self._started_at > self.policy.control_period + 1e-9

    def _predictive_decision(
        self,
        tier: str,
        stats: TierStats,
        servers: int,
        state,
        now: float,
    ) -> Optional[str]:
        """Fire a proactive scale-out when the trend says we will saturate."""
        if state.pending_action or servers >= self.policy.max_servers:
            return None
        predicted = self.forecaster.forecast(tier, now)
        if predicted is None or predicted <= self.policy.upper_threshold:
            return None
        # Require a genuinely rising trend, not just a high plateau the
        # reactive rule already declined to act on.
        if predicted <= stats.mean_cpu_utilization + 0.05:
            return None
        self.predictive_scaleouts += 1
        self._log(
            tier,
            "predictive_trigger",
            f"util={stats.mean_cpu_utilization:.2f} forecast={predicted:.2f}",
        )
        return SCALE_OUT
