"""EC2-AutoScale: the hardware-only baseline (Section V-B).

Follows Amazon's Auto Scaling group model: a CloudWatch-style CPU threshold
adds or removes VMs, and that is all.  New servers come up with whatever
*static* soft-resource configuration the deployment template carries — so a
second Tomcat silently doubles the number of connections funnelled into
MySQL, which is precisely the pathology Fig 2(b) and Fig 5(b)/(d)/(f)
document.  The class body is nearly empty by design: the baseline *is* the
base controller.
"""

from __future__ import annotations

from repro.control.base import BaseAutoScaleController


class EC2AutoScaleController(BaseAutoScaleController):
    """Threshold VM scaling with no soft-resource adaptation."""

    name = "ec2-autoscale"
