"""The two actuators (Section IV): VM-agent and APP-agent.

* :class:`VMAgent` performs VM-level scaling: provisions a VM through the
  hypervisor (15 s preparation), creates the tier server inside it, joins it
  to the balancer — or drains a server, waits for in-flight work, removes it
  and terminates its VM.
* :class:`AppAgent` performs fine-grained soft-resource re-allocation:
  resizing thread pools and DB connection pools of *live* servers without
  interrupting them.

Both agents keep an action log so experiments can reconstruct the scaling
timelines of Fig 5(c)–(f).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.hypervisor import Hypervisor
from repro.cluster.vm import VirtualMachine, VMState
from repro.errors import ControlError
from repro.ntier.softconfig import SoftResourceConfig
from repro.sim.events import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.agent import MonitorFleet
    from repro.ntier.server import TierServer
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment


@dataclass(frozen=True)
class ActuatorAction:
    """One entry in an actuator's audit log."""

    time: float
    actuator: str
    action: str
    tier: str
    detail: str = ""


class VMAgent:
    """Starts and stops VMs carrying tier servers.

    ``preparation_periods`` maps tier -> seconds from the provision call to
    service mode.  Stateless app servers use the paper's 15 s; stateful DB
    replicas default to 30 s — the paper notes that "adding VMs that run
    stateful servers is more complicated because of the data/state
    consistency issues", and the longer warm-up is what opens the windows
    in which a freshly doubled connection-pool total hammers a not-yet-
    reinforced MySQL tier (the Fig 5 incidents).
    """

    #: Tiers this agent can scale (the paper never scales the web tier).
    SCALABLE_TIERS = ("app", "db")

    #: Default per-tier VM preparation periods (seconds).
    DEFAULT_PREPARATION_PERIODS = {"app": 15.0, "db": 30.0}

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        hypervisor: Hypervisor,
        fleet: Optional["MonitorFleet"] = None,
        preparation_periods: Optional[Dict[str, float]] = None,
    ) -> None:
        self.env = env
        self.system = system
        self.hypervisor = hypervisor
        self.fleet = fleet
        self.preparation_periods = dict(
            self.DEFAULT_PREPARATION_PERIODS
            if preparation_periods is None
            else preparation_periods
        )
        self.actions: List[ActuatorAction] = []
        self._vm_by_server: Dict[str, VirtualMachine] = {}
        self._vm_seq = itertools.count(1)
        self._bootstrapped = False

    # -- bookkeeping --------------------------------------------------------------
    def vm_for(self, server: "TierServer") -> Optional[VirtualMachine]:
        """The VM hosting ``server`` (``None`` for unbootstrapped servers)."""
        return self._vm_by_server.get(server.name)

    def _log(self, action: str, tier: str, detail: str = "") -> None:
        self.actions.append(
            ActuatorAction(self.env.now, "vm-agent", action, tier, detail)
        )

    def bootstrap(self) -> None:
        """Attach already-RUNNING VMs to the system's initial servers.

        The paper's experiments start with a live 1/1/1 deployment; its VMs
        exist (and bill) from t = 0 without a boot delay.
        """
        if self._bootstrapped:
            raise ControlError("VMAgent.bootstrap() called twice")
        self._bootstrapped = True
        for server in self.system.all_servers():
            vm, _ready = self.hypervisor.provision(
                f"vm-{server.name}", preparation_period=0.0
            )
            vm.server = server
            self._vm_by_server[server.name] = vm
            self._log("bootstrap", server.tier, server.name)

    # -- scale out -----------------------------------------------------------------
    def scale_out(self, tier: str, **server_kwargs) -> Process:
        """Provision a VM, boot it, create and register the tier server.

        Returns a process that finishes with the new server once it is in
        service.  ``server_kwargs`` are forwarded to the topology's server
        factory (DCM passes the planned pool sizes here).
        """
        if tier not in self.SCALABLE_TIERS:
            raise ControlError(f"tier {tier!r} is not scalable")
        return self.env.process(self._scale_out(tier, server_kwargs))

    def _scale_out(self, tier: str, server_kwargs):
        vm_name = f"vm-{tier}-{next(self._vm_seq)}"
        vm, ready = self.hypervisor.provision(
            vm_name, preparation_period=self.preparation_periods.get(tier)
        )
        self._log("provision", tier, vm_name)
        yield ready
        if tier == "app":
            server = self.system.add_tomcat(**server_kwargs)
        else:
            server = self.system.add_mysql(**server_kwargs)
        vm.server = server
        self._vm_by_server[server.name] = vm
        if self.fleet is not None:
            self.fleet.reconcile()
        self._log("join", tier, f"{server.name} on {vm_name}")
        return server

    # -- scale in -------------------------------------------------------------------
    def choose_victim(self, tier: str) -> "TierServer":
        """Pick the server to remove: the most recently added accepting one
        (LIFO keeps the oldest, warmest servers in place).

        On a sharded db tier LIFO alone is topology-blind: removing a
        shard's last member black-holes its key range, and removing a
        primary forces a failover.  So shard-carrying candidates are
        filtered — never the last member of a shard, replicas before
        primaries — with LIFO order preserved within each preference
        level.  When every shard is down to one member the tier is at its
        sharded floor and this raises :class:`ControlError` (the
        controller logs ``scale_in_failed`` and moves on), because each
        shard owns a key range no other server can serve.  Unsharded
        tiers (``shard is None`` everywhere) take the plain LIFO path
        unchanged.
        """
        candidates = self.system.active_servers(tier)
        if len(candidates) < 2:
            raise ControlError(f"tier {tier!r} cannot shrink below one server")
        shard_sizes: dict = {}
        for server in candidates:
            sid = getattr(server, "shard", None)
            if sid is not None:
                shard_sizes[sid] = shard_sizes.get(sid, 0) + 1

        def eligible(server: "TierServer", spare_primary: bool) -> bool:
            sid = getattr(server, "shard", None)
            if sid is None:
                return True
            if shard_sizes.get(sid, 0) < 2:
                return False
            return not (spare_primary and getattr(server, "role", "") == "primary")

        for spare_primary in (True, False):
            for server in reversed(candidates):
                if eligible(server, spare_primary):
                    return server
        raise ControlError(
            f"tier {tier!r} is at its sharded floor (one server per shard); "
            "no scale-in victim"
        )

    def scale_in(self, tier: str, server: Optional["TierServer"] = None) -> Process:
        """Drain a server, remove it, and terminate its VM.

        Returns a process that finishes with the removed server's name.
        """
        victim = server if server is not None else self.choose_victim(tier)
        return self.env.process(self._scale_in(tier, victim))

    def _scale_in(self, tier: str, victim: "TierServer"):
        self._log("drain", tier, victim.name)
        vm = self._vm_by_server.get(victim.name)
        if vm is not None and vm.state is VMState.RUNNING:
            vm.transition(VMState.DRAINING)
        yield self.system.drain(victim)
        self.system.remove(victim)
        if vm is not None:
            self.hypervisor.terminate(vm)
            self._vm_by_server.pop(victim.name, None)
        if self.fleet is not None:
            self.fleet.reconcile()
        self._log("terminate", tier, victim.name)
        return victim.name

    # -- crash handling --------------------------------------------------------------
    def handle_crash(self, server: "TierServer") -> None:
        """Clean up after an abrupt server death (fault injection).

        The server is already dead — no drain.  Force-terminate its VM (a
        crashed host stops billing), drop the bookkeeping, and reconcile the
        monitor fleet so no orphaned agent keeps sampling a corpse.
        """
        vm = self._vm_by_server.pop(server.name, None)
        if vm is not None:
            self.hypervisor.terminate(vm)
        if self.fleet is not None:
            self.fleet.reconcile()
        self._log("crash", server.tier, server.name)


class AppAgent:
    """Resizes soft resources on live servers (Section IV-B).

    Controls Tomcat's request-processing concurrency *directly* (its thread
    pool) and MySQL's *indirectly* (the upstream Tomcat connection pools) —
    the two mechanisms the paper describes.
    """

    def __init__(self, env: "Environment", system: "NTierSystem") -> None:
        self.env = env
        self.system = system
        self.actions: List[ActuatorAction] = []

    def _log(self, action: str, tier: str, detail: str) -> None:
        self.actions.append(ActuatorAction(self.env.now, "app-agent", action, tier, detail))

    def apply(self, soft: SoftResourceConfig) -> None:
        """Apply a full soft-resource allocation to every live server."""
        self.system.apply_soft_config(soft)
        self._log("apply", "all", str(soft))

    def set_tomcat_threads(self, size: int) -> None:
        """Resize every Tomcat's thread pool (direct concurrency control)."""
        for server in self.system.tier_servers("app"):
            server.threads.resize(size)
        self.system.soft = self.system.soft.with_tomcat_threads(size)
        self._log("tomcat_threads", "app", str(size))

    def set_db_connections_per_tomcat(self, size: int) -> None:
        """Resize every Tomcat's DB connection pool (indirect control of
        MySQL's concurrency)."""
        for server in self.system.tier_servers("app"):
            server.db_pool.resize(size)
        self.system.soft = self.system.soft.with_db_connections(size)
        self._log("db_connections", "db", str(size))
