"""One generic name → entry registry used across the library.

The scenario layer grew two hand-rolled registries (controllers,
workloads) and the fault subsystem adds two more (fault kinds,
resilience policies); :class:`Registry` is the single implementation
behind all of them.  It is a small ordered mapping with decorator-style
registration and a :meth:`resolve` that fails with the known keys —
the error shape every ``ScenarioSpec`` validation path relies on::

    POLICIES = Registry("resilience policy")

    @POLICIES.register("retry")
    def _build_retry(params, inner):
        ...

    factory = POLICIES.resolve("retry")     # ConfigurationError if unknown

Instances behave like read-mostly dicts (``name in reg``, ``reg[name]``,
``sorted(reg)``, ``len(reg)``); tests may :meth:`unregister` entries they
added.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError


class Registry:
    """An ordered name → entry mapping with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable noun for error messages (``"controller"``,
        ``"fault"``, ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"<Registry {self.kind}: {self.names()}>"

    # -- mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        return self._entries[name]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, default: Any = None) -> Any:
        """The entry for ``name``, or ``default`` when unregistered."""
        return self._entries.get(name, default)

    def names(self) -> List[str]:
        """Registered keys, sorted."""
        return sorted(self._entries)

    # -- registration -------------------------------------------------------
    def register(self, name: str) -> Callable[[Any], Any]:
        """Decorator: register the decorated object under ``name``.

        Re-registering a name replaces the entry (last registration wins),
        matching the historical controller/workload behaviour.
        """

        def deco(obj: Any) -> Any:
            self._entries[name] = obj
            return obj

        return deco

    def add(self, name: str, obj: Any) -> Any:
        """Imperative registration (same semantics as :meth:`register`)."""
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> Optional[Any]:
        """Remove and return an entry (``None`` if absent) — for tests."""
        return self._entries.pop(name, None)

    def pop(self, name: str, *default: Any) -> Any:
        """dict-style removal (kept for existing callers)."""
        return self._entries.pop(name, *default)

    # -- lookup -------------------------------------------------------------
    def resolve(self, name: str) -> Any:
        """Look ``name`` up, or raise listing the known keys."""
        entry = self._entries.get(name)
        if entry is None:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r} (registered: {self.names()})"
            )
        return entry
