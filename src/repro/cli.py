"""Command-line interface: ``python -m repro <command> ...``.

Gives operators the library's main entry points without writing Python:

``steady``
    Run a fixed topology under a static RUBBoS population and print the
    steady-state table.
``knee``
    Direct-stress a tier across concurrency levels (the Fig 2(a) method).
``train``
    Train the concurrency-aware model per tier and print the Table-I row.
``predict``
    Analytic operating-point prediction (no simulation) across user levels.
``autoscale``
    Replay a trace against a controller ("dcm" / "ec2" / "predictive") and
    print the stability report; optionally save the full artefact JSON.
``sweep``
    Run an arbitrary population sweep from flags or a spec JSON file
    (``--spec``), printing the per-point table and engine telemetry.
``scenario``
    Assemble and run a declarative :class:`repro.scenario.ScenarioSpec`
    from a JSON file through the composition root: ``repro scenario run
    spec.json``.  Prints completion/failure/shed counts, the fault
    injection log, and (with a controller) billed VM-seconds.  ``repro
    scenario run --list`` prints every registered controller, workload,
    fault kind, and resilience policy.
``trace``
    Export a built-in workload trace to CSV (or describe it).
``lint``
    Static determinism lint (rules DCM001–DCM010) over source trees;
    defaults to the installed ``repro`` package.  ``--deep`` adds the
    interprocedural dataflow analyses (DCM101–DCM103) with optional
    ``--sarif`` output and ``--baseline`` comparison.  Exits 1 on
    findings not covered by the baseline.
``check``
    Sanitized smoke checks: two-run determinism digest, runtime invariant
    sanitizer, and a VM lifecycle/billing audit.  Exits 1 on failure.
``audit``
    Differential validation & scenario fuzzing (:mod:`repro.audit`):
    ``repro audit --budget N --seed S`` draws N random scenarios across
    the property catalogue (analytical M/M/c oracle, metamorphic and
    conservation properties), shrinks any failure to a minimal JSON spec
    under ``--save-failures``, and exits 1.  ``--properties NAMES``
    restricts the draw (the nightly fault budget passes
    ``--properties fault_conservation``).  ``repro audit replay
    SPEC`` re-checks a saved spec file or a directory of them (e.g. the
    committed ``tests/audit_corpus/``).
``perf``
    Kernel microbenchmarks (event dispatch, timeout churn, pool cycles,
    condition fan-in, a Fig-5-shaped autoscale run), armed and disarmed,
    written to ``BENCH_kernel.json``.  ``--baseline FILE`` compares the
    machine-normalized event throughput against a committed report and
    exits 1 on a regression beyond ``--tolerance`` (default 25%).
``lab``
    Manifest-driven experiment suites on the content-addressed artifact
    store (:mod:`repro.lab`).  ``repro lab run benchmarks/suite.json -k
    fig5`` runs a selection of the committed suite, emits the rendered
    artefacts under ``out/`` beside the manifest, and writes a provenance
    run index; ``--baseline RUN`` diffs the fresh run against a recorded
    one (exit 1 on deltas) and ``--save-baseline FILE`` commits the new
    index.  ``repro lab diff A B`` compares two run indexes (run ids or
    index paths) artifact by artifact with per-metric deltas and store
    integrity verification; ``repro lab gc`` sweeps unreachable store
    objects (stale version, corrupt, orphaned tmp, legacy flat-layout
    entries) and prunes old runs; ``repro lab stats`` prints store
    occupancy.

Every simulation command routes through the experiment engine
(:mod:`repro.runner`): ``--jobs N`` fans points out over N worker
processes and ``--no-cache`` disables the on-disk result cache — results
are bit-identical either way.  Every command accepts ``--seed`` and
honours determinism; heavy commands accept ``--demand-scale`` (see
DESIGN.md §2).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import repro
from repro.analysis import stability_report
from repro.analysis.experiments import build_system, trained_models
from repro.analysis.persistence import save_curve, save_run
from repro.analysis.tables import render_sparkline, render_table
from repro.model import predict_curve, specs_from_system
from repro.ntier import HardwareConfig, SoftResourceConfig
from repro.runner import (
    AutoscaleSpec,
    SteadySpec,
    StressSpec,
    SweepSpec,
    TrainingSpec,
    run,
    run_many,
    spec_from_json,
)
from repro.workload import large_variation, sine_trace, spike_trace

#: Built-in traces addressable from the CLI.
TRACES = {
    "large_variation": large_variation,
    "sine": lambda: sine_trace(600.0, 300.0, 0.3, 0.9),
    "spike": lambda: spike_trace(300.0, 0.3, 0.9, 120.0, 60.0),
}


def _int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError as err:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints: {err}")


def _engine_kwargs(args: argparse.Namespace) -> dict:
    return {"jobs": args.jobs, "cache": not args.no_cache}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DCM (ICDCS 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def engine(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for simulation points (default 1)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the on-disk result cache",
        )

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0, help="root RNG seed")
        p.add_argument(
            "--demand-scale", type=float, default=1.0,
            help="multiply CPU demands (speed knob; knees invariant)",
        )
        engine(p)

    p = sub.add_parser("steady", help="steady-state run of a fixed topology")
    common(p)
    p.add_argument("--hardware", default="1/1/1", help="#W/#A/#D")
    p.add_argument("--soft", default="1000/100/80", help="#W_T/#A_T/#A_C")
    p.add_argument("--users", type=int, default=1500)
    p.add_argument("--think-time", type=float, default=3.0)
    p.add_argument("--warmup", type=float, default=5.0)
    p.add_argument("--duration", type=float, default=20.0)

    p = sub.add_parser("knee", help="stress one tier across concurrencies")
    common(p)
    p.add_argument("--tier", choices=("app", "db"), default="db")
    p.add_argument(
        "--levels", type=_int_list,
        default=[1, 5, 10, 20, 40, 80, 160, 320, 600],
    )
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--csv", help="write the curve to this CSV path")

    p = sub.add_parser("train", help="train the concurrency-aware model")
    common(p)
    p.add_argument("--tier", choices=("app", "db", "both"), default="both")

    p = sub.add_parser("predict", help="analytic prediction (no simulation)")
    common(p)
    p.add_argument("--hardware", default="1/1/1")
    p.add_argument("--soft", default="1000/100/80")
    p.add_argument("--users", type=_int_list, default=[500, 1500, 3000, 6000])
    p.add_argument("--think-time", type=float, default=3.0)

    p = sub.add_parser("autoscale", help="replay a trace against a controller")
    common(p)
    p.add_argument("--controller", choices=("dcm", "ec2", "predictive"), default="dcm")
    p.add_argument("--trace", choices=sorted(TRACES), default="large_variation")
    p.add_argument("--max-users", type=int, default=None,
                   help="population at trace level 1.0 (default 5920/scale)")
    p.add_argument("--out", help="write the run artefact JSON here")

    p = sub.add_parser(
        "sweep", help="population sweep from flags or a spec JSON file"
    )
    common(p)
    p.add_argument("--spec", metavar="FILE",
                   help="spec JSON file (overrides the sweep flags)")
    p.add_argument("--users", type=_int_list, default=[100, 400, 1600],
                   help="comma-separated user levels")
    p.add_argument("--workload", choices=("jmeter", "rubbos"), default="jmeter")
    p.add_argument("--hardware", default="1/1/1", help="#W/#A/#D")
    p.add_argument("--soft", default="1000/100/80", help="#W_T/#A_T/#A_C")
    p.add_argument("--think-time", type=float, default=3.0)
    p.add_argument("--warmup", type=float, default=4.0)
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--imbalance", type=float, default=0.05)

    p = sub.add_parser(
        "scenario", help="assemble and run a declarative scenario spec"
    )
    p.add_argument("action", choices=["run"], help="what to do with the spec")
    p.add_argument(
        "spec", nargs="?", metavar="SPEC_JSON",
        help="path to a ScenarioSpec JSON file",
    )
    p.add_argument(
        "--until", type=float, default=None, metavar="T",
        help="override the run horizon (absolute simulated seconds)",
    )
    p.add_argument(
        "--list", action="store_true", dest="list_registries",
        help="list registered controllers, workloads, fault kinds, and "
             "resilience policies, then exit",
    )

    p = sub.add_parser("trace", help="export or describe a built-in trace")
    engine(p)
    p.add_argument("--name", choices=sorted(TRACES), default="large_variation")
    p.add_argument("--csv", help="write the trace to this CSV path")

    p = sub.add_parser(
        "lint", help="static determinism lint (DCM001-DCM010, deep DCM10x)"
    )
    p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    p.add_argument(
        "--select", type=lambda s: [c for c in s.split(",") if c],
        default=None, metavar="CODES",
        help="comma-separated rule codes to enable (default: all)",
    )
    p.add_argument(
        "--rules", action="store_true",
        help="print the rule table and exit",
    )
    p.add_argument(
        "--deep", action="store_true",
        help="also run the interprocedural dataflow analyses "
             "(DCM101 resource leaks, DCM102 yield protocol, "
             "DCM103 nondeterminism taint)",
    )
    p.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="write findings as a SARIF 2.1.0 document to FILE",
    )
    p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare findings against this baseline file and fail only "
             "on new ones (default with --deep: LINT_BASELINE.json beside "
             "the linted tree, when present)",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with the current findings "
             "instead of failing",
    )

    p = sub.add_parser(
        "check", help="sanitized determinism + invariant smoke checks"
    )
    p.add_argument("--seed", type=int, default=0, help="root RNG seed")
    p.add_argument(
        "--demand-scale", type=float, default=1.0,
        help="multiply CPU demands (speed knob; knees invariant)",
    )

    p = sub.add_parser(
        "audit", help="differential validation & scenario fuzzing"
    )
    p.add_argument(
        "action", nargs="?", default="run", choices=("run", "replay"),
        help="'run' fuzzes fresh scenarios; 'replay' re-checks saved specs",
    )
    p.add_argument(
        "spec", nargs="?", metavar="SPEC",
        help="scenario JSON file or directory of them (replay only)",
    )
    p.add_argument("--seed", type=int, default=0, help="fuzzer root seed")
    p.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="number of scenarios to generate (default 50)",
    )
    p.add_argument(
        "--save-failures", metavar="DIR", default="audit_failures",
        help="write minimized failing specs here (default audit_failures/)",
    )
    p.add_argument(
        "--max-shrink-runs", type=int, default=48, metavar="N",
        help="re-check budget per failing scenario during shrinking",
    )
    p.add_argument(
        "--properties", type=lambda s: [n for n in s.replace(",", " ").split() if n],
        default=None, metavar="NAMES",
        help="restrict generation to these property names "
             "(comma-separated; default: the full weighted mix)",
    )
    engine(p)

    p = sub.add_parser(
        "perf", help="kernel microbenchmarks -> BENCH_kernel.json"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="smaller op counts / fewer repetitions (the CI setting)",
    )
    p.add_argument(
        "--out", default="BENCH_kernel.json", metavar="FILE",
        help="report path (default BENCH_kernel.json)",
    )
    p.add_argument(
        "--baseline", metavar="FILE",
        help="compare against this committed report; exit 1 on regression",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional drop in normalized event throughput "
             "(default 0.25)",
    )
    p.add_argument(
        "--store", metavar="DIR",
        help="also record the report in this lab artifact store "
             "(volatile bench artifact)",
    )

    p = sub.add_parser(
        "lab", help="manifest-driven suites on the artifact store"
    )
    lab_sub = p.add_subparsers(dest="lab_action", required=True)

    def store_opt(lp: argparse.ArgumentParser) -> None:
        lp.add_argument(
            "--store", metavar="DIR", default=None,
            help="artifact store root (default: out/.cache beside the "
                 "manifest, or benchmarks/out/.cache at the repo root)",
        )

    lp = lab_sub.add_parser("run", help="run a suite manifest")
    lp.add_argument("manifest", metavar="MANIFEST_JSON",
                    help="path to a repro-lab/1 suite manifest")
    lp.add_argument("-k", dest="keyword", default=None, metavar="SUBSTR",
                    help="select experiments whose name contains SUBSTR")
    lp.add_argument("--tags", default=None, metavar="T[,T...]",
                    help="select experiments carrying any of these tags")
    lp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes per engine batch (default 1)")
    lp.add_argument("--no-cache", action="store_true",
                    help="bypass the artifact store entirely")
    lp.add_argument("--reanalyze", action="store_true",
                    help="re-run analyses (and their assertions) even when "
                         "every artifact is already stored")
    lp.add_argument("--out", metavar="DIR", default=None,
                    help="rendered-artefact directory (default: out/ beside "
                         "the manifest)")
    lp.add_argument("--quiet", action="store_true",
                    help="suppress per-artifact banners and telemetry")
    lp.add_argument("--baseline", metavar="RUN", default=None,
                    help="after running, diff against this run id or index "
                         "path; exit 1 on deltas")
    lp.add_argument("--save-baseline", metavar="FILE", default=None,
                    help="also write the new run index to FILE")
    store_opt(lp)

    lp = lab_sub.add_parser("diff", help="compare two lab run indexes")
    lp.add_argument("run_a", metavar="RUN_A",
                    help="run id in the store, or path to an index JSON")
    lp.add_argument("run_b", metavar="RUN_B",
                    help="run id in the store, or path to an index JSON")
    store_opt(lp)

    lp = lab_sub.add_parser("gc", help="sweep unreachable store objects")
    lp.add_argument("--keep-runs", type=int, default=None, metavar="N",
                    help="also prune run indexes beyond the newest N")
    lp.add_argument("--dry-run", action="store_true",
                    help="count, but remove nothing")
    store_opt(lp)

    lp = lab_sub.add_parser("stats", help="store occupancy counters")
    store_opt(lp)

    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------

def _steady_rows(steady) -> List[List[object]]:
    rows = [
        ["throughput (req/s)", steady.throughput],
        ["mean RT (s)", steady.mean_response_time],
        ["completed", float(steady.completed)],
        ["failed", float(steady.failed)],
    ]
    for tier in ("web", "app", "db"):
        rows.append([f"{tier} concurrency", steady.tier_concurrency[tier]])
        rows.append([f"{tier} cpu util", steady.tier_utilization[tier]])
    return rows


def cmd_steady(args: argparse.Namespace) -> int:
    spec = SteadySpec(
        hardware=args.hardware,
        soft=args.soft,
        users=args.users,
        workload="rubbos",
        think_time=args.think_time,
        seed=args.seed,
        demand_scale=args.demand_scale,
        warmup=args.warmup,
        duration=args.duration,
    )
    res = run(spec, **_engine_kwargs(args))
    print(render_table(["metric", "value"], _steady_rows(res.value.steady),
                       title=f"steady state: {args.hardware} @ {args.soft}, "
                             f"{args.users} users"))
    print(res.telemetry.render())
    return 0


def cmd_knee(args: argparse.Namespace) -> int:
    spec = StressSpec(
        tier=args.tier,
        concurrencies=tuple(args.levels),
        seed=args.seed,
        demand_scale=args.demand_scale,
        duration=args.duration,
    )
    res = run(spec, **_engine_kwargs(args))
    points = res.value
    rows = [[p.target_concurrency, p.measured_concurrency, p.throughput]
            for p in points]
    print(render_table(
        ["concurrency", "measured", "throughput (req/s)"], rows,
        title=f"{args.tier} concurrency sweep",
    ))
    print("shape:", render_sparkline([p.throughput for p in points]))
    best = max(points, key=lambda p: p.throughput)
    print(f"knee ~ {best.target_concurrency} at {best.throughput:.0f} req/s")
    print(res.telemetry.render())
    if args.csv:
        save_curve(args.csv, "concurrency",
                   [(p.target_concurrency, p.throughput) for p in points],
                   y_label="throughput")
        print(f"curve written to {args.csv}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    tiers = ("app", "db") if args.tier == "both" else (args.tier,)
    specs = [
        TrainingSpec(tier=tier, seed=args.seed, demand_scale=args.demand_scale)
        for tier in tiers
    ]
    res = run_many(specs, **_engine_kwargs(args))
    for outcome in res.value:
        print(outcome.fit.summary())
    print(res.telemetry.render())
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    _env, system = build_system(
        hardware=HardwareConfig.parse(args.hardware),
        soft=SoftResourceConfig.parse(args.soft),
        seed=args.seed,
        demand_scale=args.demand_scale,
    )
    specs = specs_from_system(system)
    curve = predict_curve(args.users, args.think_time, specs)
    rows = [
        [p.users, p.throughput, p.response_time,
         "yes" if p.saturated else "no", p.bottleneck]
        for p in curve
    ]
    print(render_table(
        ["users", "throughput", "RT (s)", "saturated", "bottleneck"], rows,
        title=f"analytic prediction: {args.hardware} @ {args.soft}",
    ))
    return 0


def cmd_autoscale(args: argparse.Namespace) -> int:
    trace = TRACES[args.trace]()
    max_users = args.max_users or max(1, int(5920 / args.demand_scale))
    print("training offline models (once per scale) ...", file=sys.stderr)
    models = trained_models(args.demand_scale, args.seed)
    spec = AutoscaleSpec(
        controller=args.controller,
        trace=trace,
        max_users=max_users,
        seed=args.seed,
        demand_scale=args.demand_scale,
        models=models,
    )
    res = run(spec, **_engine_kwargs(args))
    the_run = res.value
    report = stability_report(
        the_run.request_log, the_run.failed, the_run.duration,
        vm_seconds=the_run.vm_seconds,
    )
    print(render_table(
        ["metric", "value"], report.rows(),
        title=f"{args.controller} on {args.trace} ({max_users} peak users)",
    ))
    for tier in ("app", "db"):
        print(f"{tier} VMs: {the_run.tier_vm_timeline(tier)}")
    print(res.telemetry.render())
    if args.out:
        save_run(the_run, args.out)
        print(f"artefact written to {args.out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as fh:
            spec = spec_from_json(fh.read())
        title = f"spec sweep ({spec.kind}) from {args.spec}"
    else:
        spec = SweepSpec(
            users_levels=tuple(args.users),
            hardware=args.hardware,
            soft=args.soft,
            workload=args.workload,
            think_time=args.think_time,
            seed=args.seed,
            demand_scale=args.demand_scale,
            warmup=args.warmup,
            duration=args.duration,
            imbalance=args.imbalance,
        )
        title = (f"{args.workload} sweep: {args.hardware} @ {args.soft}, "
                 f"seed {args.seed}")
    res = run(spec, **_engine_kwargs(args))
    value = res.value
    if isinstance(spec, SweepSpec):
        rows = [
            [p.users, p.steady.throughput, p.steady.mean_response_time,
             p.steady.tier_concurrency["app"], p.steady.tier_concurrency["db"]]
            for p in value
        ]
        print(render_table(
            ["users", "throughput", "RT (s)", "app conc", "db conc"], rows,
            title=title,
        ))
    else:
        # A --spec file can carry any spec kind; fall back to repr output.
        print(title)
        print(value)
    print(res.telemetry.render())
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import Deployment, ScenarioSpec, registries

    if args.list_registries:
        rows = [
            [group, name]
            for group, registry in sorted(registries().items())
            for name in registry.names()
        ]
        print(render_table(["registry", "name"], rows,
                           title="scenario registries"))
        return 0
    if args.spec is None:
        raise SystemExit("repro scenario run: a SPEC_JSON file is required "
                         "(or pass --list to see the registries)")
    spec = ScenarioSpec.from_json(Path(args.spec).read_text())
    with Deployment(spec) as dep:
        dep.run(until=args.until)
    horizon = args.until if args.until is not None else dep.duration
    rows: List[List[object]] = [
        ["controller", spec.controller or "-"],
        ["workload", spec.workload or "-"],
        ["simulated seconds", float(horizon)],
        ["completed requests", float(dep.system.completed_count())],
        ["failed requests", float(len(dep.system.failure_log))],
        ["shed requests", float(len(dep.system.shed_log))],
    ]
    if dep.injector is not None:
        for event in dep.injector.log:
            rows.append([f"fault {event.kind} {event.phase}", event.time])
    if dep.hypervisor is not None:
        rows.append(["VM-seconds", dep.hypervisor.billing.vm_seconds(horizon)])
        for tier in ("app", "db"):
            timeline = dep.controller.scaling_timeline(tier)
            rows.append([f"{tier} servers (final)", float(timeline[-1][1])])
    print(render_table(["metric", "value"], rows,
                       title=f"scenario: {Path(args.spec).name}"))
    if dep.resilience_chains:
        from repro.lab import render_resilience_report

        print(render_resilience_report(dep.resilience_report()))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    trace = TRACES[args.name]()
    print(f"{args.name}: duration {trace.duration:.0f}s, "
          f"peak-to-mean {trace.peak_to_mean:.2f}")
    levels = [lvl for _t, lvl in trace.sample(max(1.0, trace.duration / 60))]
    print("shape:", render_sparkline(levels))
    if args.csv:
        trace.to_csv(args.csv)
        print(f"trace written to {args.csv}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.check import RULES, lint_paths, render_diagnostics
    from repro.check.flow import FLOW_RULES

    if args.rules:
        rows = [[r.code, r.name, r.summary] for r in (*RULES, *FLOW_RULES)]
        print(render_table(["code", "name", "catches"], rows,
                           title="determinism lint rules"))
        return 0
    paths = args.paths or [os.path.dirname(os.path.abspath(repro.__file__))]
    diagnostics = lint_paths(paths, select=args.select, deep=args.deep)

    if args.sarif:
        from repro.check.flow.sarif import write_sarif

        write_sarif(diagnostics, (*RULES, *FLOW_RULES), args.sarif)
        print(f"SARIF report written to {args.sarif}")

    baseline_path = args.baseline
    if baseline_path is None and args.deep and os.path.exists(
            "LINT_BASELINE.json"):
        baseline_path = "LINT_BASELINE.json"

    if args.update_baseline:
        from repro.check.flow.baseline import save_baseline

        target = baseline_path or "LINT_BASELINE.json"
        root = os.path.dirname(os.path.abspath(target)) or "."
        save_baseline(diagnostics, target, root=root)
        print(f"baseline rewritten: {target} "
              f"({len(diagnostics)} finding(s))")
        return 0

    if baseline_path is not None:
        from repro.check.flow.baseline import load_baseline, new_findings

        root = os.path.dirname(os.path.abspath(baseline_path)) or "."
        known = load_baseline(baseline_path)
        fresh = new_findings(diagnostics, known, root=root)
        if len(fresh) != len(diagnostics):
            print(f"{len(diagnostics) - len(fresh)} baselined finding(s) "
                  f"suppressed by {baseline_path}")
        diagnostics = fresh

    if diagnostics:
        print(render_diagnostics(diagnostics))
        print(f"{len(diagnostics)} finding(s); "
              "suppress a line with '# repro: noqa[DCM00x]' plus a reason, "
              "or record accepted debt with --update-baseline")
        return 1
    print("determinism lint: clean")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check import run_smoke

    outcomes = run_smoke(seed=args.seed, demand_scale=args.demand_scale)
    rows = [[o.name, "PASS" if o.passed else "FAIL", o.detail]
            for o in outcomes]
    print(render_table(["check", "verdict", "detail"], rows,
                       title=f"sanitized smoke checks (seed {args.seed})"))
    return 0 if all(o.passed for o in outcomes) else 1


def _audit_spec_paths(spec: Optional[str]) -> List[Path]:
    if spec is None:
        raise SystemExit("repro audit replay: a spec file or directory is required")
    path = Path(spec)
    if path.is_dir():
        found = sorted(path.glob("*.json"))
        if not found:
            raise SystemExit(f"repro audit replay: no *.json specs in {path}")
        return found
    if not path.exists():
        raise SystemExit(f"repro audit replay: {path} does not exist")
    return [path]


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import Scenario, generate_scenarios, run_scenario, shrink

    engine_kwargs = _engine_kwargs(args)

    if args.action == "replay":
        rows = []
        failed = 0
        for path in _audit_spec_paths(args.spec):
            scenario = Scenario.load(path)
            result = run_scenario(scenario, **engine_kwargs)
            rows.append([path.name, scenario.property,
                         "PASS" if result.passed else "FAIL"])
            if not result.passed:
                failed += 1
                for failure in result.failures:
                    print(f"{path.name}: {failure}", file=sys.stderr)
        print(render_table(["spec", "property", "verdict"], rows,
                           title="audit corpus replay"))
        return 1 if failed else 0

    scenarios = generate_scenarios(args.seed, args.budget, properties=args.properties)
    rows = []
    failing: List[Scenario] = []
    for i, scenario in enumerate(scenarios):
        result = run_scenario(scenario, **engine_kwargs)
        rows.append([str(i), scenario.property,
                     "PASS" if result.passed else "FAIL"])
        if not result.passed:
            failing.append(scenario)
            for failure in result.failures:
                print(f"scenario {i} ({scenario.property}): {failure}",
                      file=sys.stderr)
    print(render_table(["#", "property", "verdict"], rows,
                       title=f"audit: seed {args.seed}, budget {args.budget}"))
    if not failing:
        print(f"audit: all {len(scenarios)} scenarios passed")
        return 0

    out_dir = Path(args.save_failures)
    out_dir.mkdir(parents=True, exist_ok=True)
    for scenario in failing:
        small, runs = shrink(
            scenario, max_runs=args.max_shrink_runs, **engine_kwargs
        )
        dest = out_dir / f"{small.property}-{small.seed}.json"
        small.save(dest)
        print(f"audit: shrunk {scenario.property} failure in {runs} runs "
              f"-> {dest}", file=sys.stderr)
    print(f"audit: {len(failing)}/{len(scenarios)} scenarios FAILED; "
          f"minimized specs in {out_dir}/", file=sys.stderr)
    return 1


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        compare_reports, load_report, render_report, run_suite, save_report,
    )

    report = run_suite(quick=args.quick)
    print(render_report(report))
    save_report(report, args.out)
    print(f"report written to {args.out}")
    if args.store:
        from repro.lab import ArtifactStore
        from repro.perf.suite import record_report

        key = record_report(report, ArtifactStore(args.store))
        print(f"recorded in lab store {args.store} as {key[:12]}...")
    if args.baseline:
        problems = compare_reports(
            report, load_report(args.baseline), tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"within {args.tolerance:.0%} of baseline {args.baseline}")
    return 0


def _lab_store_dir(args: argparse.Namespace) -> str:
    if args.store:
        return args.store
    from repro.runner.cache import default_cache_dir

    return default_cache_dir()


def _lab_run(args: argparse.Namespace) -> int:
    import json

    from repro.lab import SuiteManifest, diff_runs, manifest_roots, run_suite

    manifest_path = os.path.abspath(args.manifest)
    manifest = SuiteManifest.load(manifest_path)
    out_default, store_default = manifest_roots(manifest_path)
    # Dotted analysis refs ("benchmarks.analyses:fig5") resolve relative to
    # the manifest's repository, not the caller's cwd.
    manifest_dir = os.path.dirname(manifest_path)
    for entry in (os.path.dirname(manifest_dir), manifest_dir):
        if entry and entry not in sys.path:
            sys.path.insert(0, entry)
    tags = tuple(t for t in (args.tags or "").split(",") if t)

    suite_run = run_suite(
        manifest,
        out_dir=args.out or out_default,
        store_dir=None if args.no_cache else (args.store or store_default),
        jobs=args.jobs,
        cache=not args.no_cache,
        reanalyze=args.reanalyze,
        quiet=args.quiet,
        keyword=args.keyword,
        tags=tags,
    )

    rows = []
    for result in suite_run.results.values():
        rows.append([
            result.name, result.status,
            f"{result.points_hits}/{result.points_misses}",
            f"{result.analyses_hits}/{result.analyses_misses}",
            result.error or "-",
        ])
    print(render_table(
        ["experiment", "status", "points h/m", "analyses h/m", "error"],
        rows, title=f"lab run {suite_run.run_id}: {suite_run.suite}",
    ))
    if suite_run.index_path:
        print(f"run index written to {suite_run.index_path}")

    if args.save_baseline:
        with open(args.save_baseline, "w", encoding="utf-8") as fh:
            json.dump(suite_run.index, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {args.save_baseline}")

    if not suite_run.ok:
        return 1
    if args.baseline:
        store = suite_run.store
        if store is None:
            raise SystemExit("repro lab run: --baseline needs the store "
                             "(drop --no-cache)")
        base_index = store.read_run_index(args.baseline)
        if args.keyword or tags:
            # A selected run covers a subset of the suite; diff only the
            # experiments (and comparisons) it actually produced, so a
            # full-suite baseline does not fail the subset on "removed".
            base_index = dict(base_index)
            for section in ("experiments", "comparisons"):
                ours = suite_run.index.get(section) or {}
                base_index[section] = {
                    name: rec
                    for name, rec in (base_index.get(section) or {}).items()
                    if name in ours
                }
        report = diff_runs(store, base_index, suite_run.index)
        print(report.render())
        return 0 if report.empty else 1
    return 0


def cmd_lab(args: argparse.Namespace) -> int:
    from repro.lab import ArtifactStore, diff_runs

    if args.lab_action == "run":
        return _lab_run(args)

    store = ArtifactStore(_lab_store_dir(args))
    if args.lab_action == "diff":
        report = diff_runs(
            store,
            store.read_run_index(args.run_a),
            store.read_run_index(args.run_b),
        )
        print(report.render())
        return 0 if report.empty else 1
    if args.lab_action == "gc":
        removed = store.gc(keep_runs=args.keep_runs, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"lab gc ({store.root}): " + ", ".join(
            f"{count} {category}" for category, count in sorted(removed.items())
        ) + f" {verb}")
        return 0
    stats = store.stats()
    rows = [[name, stats[name]] for name in sorted(stats)]
    print(render_table(["stat", "value"], rows,
                       title=f"lab store: {store.root}"))
    return 0


_COMMANDS = {
    "steady": cmd_steady,
    "knee": cmd_knee,
    "train": cmd_train,
    "predict": cmd_predict,
    "autoscale": cmd_autoscale,
    "scenario": cmd_scenario,
    "sweep": cmd_sweep,
    "trace": cmd_trace,
    "lint": cmd_lint,
    "check": cmd_check,
    "audit": cmd_audit,
    "perf": cmd_perf,
    "lab": cmd_lab,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
