"""Per-Tomcat global database connection pool (DBConnP) — a soft resource.

The paper modified RUBBoS so that *all servlets in one Tomcat share a single
global DB connection pool*, because that pool is what bounds the concurrency
of requests flowing into MySQL: with ``K`` Tomcats at ``C`` connections each,
at most ``K*C`` queries can be in service at the DB tier.  DCM's APP-agent
controls MySQL's request-processing concurrency *indirectly* by resizing
these upstream pools (Section IV-B, second mechanism).

Semantics mirror :class:`~repro.ntier.threadpool.ThreadPool` (FIFO admission,
runtime resize, lazy shrink) but the two are kept distinct types because
controllers reason about them differently and metrics label them separately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.events import Event
from repro.sim.resources import Acquire, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class ConnectionPool:
    """A Tomcat server's shared pool of connections to the DB tier."""

    def __init__(self, env: "Environment", size: int, name: str = "dbconnp") -> None:
        self.env = env
        self.name = name
        self._resource = Resource(env, size, name=name)
        self._checkouts = 0
        self._wait_time_total = 0.0

    # -- soft-resource control ---------------------------------------------------
    @property
    def size(self) -> int:
        """Current configured pool size."""
        return self._resource.capacity

    def resize(self, size: int) -> None:
        """Reconfigure the pool size on the fly (the APP-agent's knob)."""
        self._resource.resize(size)

    # -- usage ---------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Connections currently checked out (queries in flight downstream)."""
        return self._resource.in_use

    @property
    def queued(self) -> int:
        """Threads waiting for a free connection."""
        return self._resource.queue_length

    @property
    def checkouts(self) -> int:
        """Total connections ever granted."""
        return self._checkouts

    @property
    def wait_time_total(self) -> float:
        """Cumulative time threads spent waiting for a connection."""
        return self._wait_time_total

    def occupancy_integral(self) -> float:
        """Time integral of ``in_use``."""
        return self._resource.occupancy_integral()

    def checkout(self) -> Generator[Event, object, Acquire]:
        """Generator helper: ``conn = yield from pool.checkout()``."""
        asked = self.env.now
        req = self._resource.acquire()
        try:
            yield req
        except BaseException:
            # Mirror ThreadPool.checkout: a crash interrupt landing between
            # the grant and our resume must not leak the connection.
            if not req.cancel() and req.granted:
                self._resource.release(req)
            raise
        self._checkouts += 1
        self._wait_time_total += self.env.now - asked
        return req

    def checkin(self, handle: Acquire) -> None:
        """Return a connection to the pool."""
        self._resource.release(handle)
