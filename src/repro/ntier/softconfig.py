"""Soft-resource allocation notation.

The paper denotes hardware topologies ``#W/#A/#D`` (Apache/Tomcat/MySQL
server counts) and soft-resource allocations ``#W_T/#A_T/#A_C`` — Apache
thread pool size, per-Tomcat thread pool size, and per-Tomcat DB connection
pool size, e.g. the default ``1000/100/80``.  This module gives both
notations first-class types with parsing, formatting and validation so that
experiments and logs read like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HardwareConfig:
    """``#W/#A/#D`` — servers per tier (web / app / db).

    Counts may be zero: ``NTierSystem.hardware`` reports the *live*
    accepting topology, and a full-tier outage (e.g. a ``tier_partition``
    fault) genuinely leaves zero accepting servers.  Initial topologies
    still need at least one server per tier — :meth:`parse` (the spec
    entry point) and ``NTierSystem`` construction enforce that.
    """

    web: int
    app: int
    db: int

    def __post_init__(self) -> None:
        for tier, count in (("web", self.web), ("app", self.app), ("db", self.db)):
            if count < 0:
                raise ConfigurationError(f"{tier} tier count must be >= 0, got {count}")

    @classmethod
    def parse(cls, text: str) -> "HardwareConfig":
        """Parse ``"1/2/1"`` into ``HardwareConfig(web=1, app=2, db=1)``."""
        parts = text.strip().split("/")
        if len(parts) != 3:
            raise ConfigurationError(f"expected '#W/#A/#D', got {text!r}")
        try:
            web, app, db = (int(p) for p in parts)
        except ValueError as err:
            raise ConfigurationError(f"non-integer tier count in {text!r}") from err
        for tier, count in (("web", web), ("app", app), ("db", db)):
            if count < 1:
                raise ConfigurationError(f"{tier} tier needs >= 1 server, got {count}")
        return cls(web, app, db)

    def __str__(self) -> str:
        return f"{self.web}/{self.app}/{self.db}"


#: Stock-MySQL-style wide default for ``max_connections`` (see MySQLServer).
DEFAULT_MAX_CONNECTIONS = 400


@dataclass(frozen=True)
class SoftResourceConfig:
    """``#W_T/#A_T/#A_C`` — the concurrency-controlling soft resources.

    Attributes
    ----------
    apache_threads:
        Worker thread pool size of each Apache server.
    tomcat_threads:
        Thread pool size (``maxThreads``) of each Tomcat server.
    db_connections:
        Global DB connection pool size of each Tomcat server (the paper
        modified RUBBoS so all servlets share one pool per Tomcat; the
        maximum concurrency reaching MySQL is therefore
        ``app_servers * db_connections``).
    max_connections:
        Per-MySQL-server connection cap.  Not a paper knob (MySQL keeps a
        wide default), but it *bounds* DCM's db-side allocation: the upstream
        pools cannot push more than ``max_connections`` queries into one
        server, so the resize path must carry it or a plan larger than the
        construction-time cap is silently truncated.  The canonical 3-part
        ``#W_T/#A_T/#A_C`` notation is kept for the default cap; a 4th
        ``/`` part expresses an explicit override.
    """

    apache_threads: int
    tomcat_threads: int
    db_connections: int
    max_connections: int = DEFAULT_MAX_CONNECTIONS

    #: The paper's default allocation (assigned after the class definition).
    DEFAULT: ClassVar["SoftResourceConfig"]

    def __post_init__(self) -> None:
        for label, size in (
            ("apache_threads", self.apache_threads),
            ("tomcat_threads", self.tomcat_threads),
            ("db_connections", self.db_connections),
            ("max_connections", self.max_connections),
        ):
            if size < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {size}")

    @classmethod
    def parse(cls, text: str) -> "SoftResourceConfig":
        """Parse ``"1000/100/80"`` (also accepts ``-`` separators as in the
        paper's prose, e.g. ``"1000-100-80"``).  A 4th part sets the
        per-MySQL ``max_connections`` cap: ``"1000/100/80/600"``."""
        norm = text.strip().replace("-", "/")
        parts = norm.split("/")
        if len(parts) not in (3, 4):
            raise ConfigurationError(
                f"expected '#W_T/#A_T/#A_C[/max_conn]', got {text!r}"
            )
        try:
            sizes = [int(p) for p in parts]
        except ValueError as err:
            raise ConfigurationError(f"non-integer pool size in {text!r}") from err
        if len(sizes) == 3:
            sizes.append(DEFAULT_MAX_CONNECTIONS)
        return cls(*sizes)

    def with_tomcat_threads(self, n: int) -> "SoftResourceConfig":
        """Copy with a different per-Tomcat thread pool size."""
        return SoftResourceConfig(
            self.apache_threads, n, self.db_connections, self.max_connections
        )

    def with_db_connections(self, n: int) -> "SoftResourceConfig":
        """Copy with a different per-Tomcat DB connection pool size."""
        return SoftResourceConfig(
            self.apache_threads, self.tomcat_threads, n, self.max_connections
        )

    def with_max_connections(self, n: int) -> "SoftResourceConfig":
        """Copy with a different per-MySQL connection cap."""
        return SoftResourceConfig(
            self.apache_threads, self.tomcat_threads, self.db_connections, n
        )

    def max_db_concurrency(self, app_servers: int) -> int:
        """Maximum request-processing concurrency reaching the DB tier."""
        return self.db_connections * app_servers

    def __str__(self) -> str:
        base = f"{self.apache_threads}/{self.tomcat_threads}/{self.db_connections}"
        if self.max_connections == DEFAULT_MAX_CONNECTIONS:
            return base
        return f"{base}/{self.max_connections}"


SoftResourceConfig.DEFAULT = SoftResourceConfig(1000, 100, 80)
