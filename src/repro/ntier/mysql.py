"""MySQL database server model.

The paper's most performance-sensitive tier (Fig 2(a)): query throughput
peaks around 36–40 concurrent queries and *degrades* beyond — gently at
first (the quadratic crosstalk term), then sharply once lock convoys and
buffer-pool contention set in (our thrash term past the knee).

MySQL has no explicit request thread-pool knob in the paper; its
request-processing concurrency is whatever the upstream Tomcat connection
pools let through, bounded by ``max_connections`` (a wide default, as in
stock MySQL — hitting it means connection errors, not queueing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import CapacityError
from repro.ntier.contention import MYSQL_CONTENTION, ContentionModel
from repro.ntier.request import Request
from repro.ntier.server import TierServer
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class MySQLServer(TierServer):
    """One MySQL instance (read-only replica semantics for browse workloads)."""

    tier = "db"

    def __init__(
        self,
        env: "Environment",
        name: str,
        max_connections: int = 400,
        contention: ContentionModel = MYSQL_CONTENTION,
        role: str = "standalone",
        shard: "int | None" = None,
    ) -> None:
        super().__init__(env, name, contention)
        self.max_connections = int(max_connections)
        #: ``standalone`` (unsharded multi-master), ``primary`` or
        #: ``replica``.  The shard router reads these; the plain balancer
        #: ignores them.
        self.role = role
        #: Shard index this server belongs to (``None`` when unsharded, or
        #: until the shard router auto-assigns a scale-out server).
        self.shard = shard

    def set_max_connections(self, size: int) -> None:
        """Resize the connection cap (soft-config resize path).

        Raising the cap admits queued-out load immediately; lowering it only
        gates *new* queries — in-flight ones run to completion, as a live
        ``SET GLOBAL max_connections`` would behave.
        """
        if size < 1:
            raise CapacityError(f"{self.name}: max_connections must be >= 1")
        self.max_connections = int(size)

    @property
    def active_queries(self) -> int:
        """Queries currently executing (the paper's 'request processing
        concurrency in MySQL')."""
        return self.cpu.active_jobs

    def _process(
        self, request: Request, started_holder: list, demand: float = 0.0, **kwargs: Any
    ) -> Generator[Event, Any, None]:
        if self.active_queries >= self.max_connections:
            raise CapacityError(f"{self.name}: max_connections exceeded")
        # Admitted: from here on the query may commit even if the client-side
        # attempt dies (an orphaned in-flight query finishes on its own), so
        # the retry guard must treat the attempt as non-replayable.
        request.db_started += 1
        started_holder[0] = self.env.now
        yield self.cpu.execute(demand)
        # The query committed.  Aborted/partial queries never reach this
        # line, so a retry after a *failed* attempt is safe iff this counter
        # did not move (the retry policy's idempotency guard).
        request.db_commits += 1

    def snapshot(self) -> dict:
        """Extend the base counters with connection statistics."""
        snap = super().snapshot()
        snap.update(
            {
                "active_queries": float(self.active_queries),
                "max_connections": float(self.max_connections),
            }
        )
        if self.shard is not None:
            snap["shard"] = float(self.shard)
        return snap
