"""Apache web server model.

The entry tier: terminates client HTTP connections on a worker-thread pool
(the paper's ``#W_T``, default 1000), does lightweight request/response
shuffling on its CPU, and forwards each request to the application tier
through the app balancer (mod_jk/AJP in the paper).  In the paper's
browse-only experiments the single Apache at 1000 threads is never the
bottleneck — but the pool still matters: when downstream tiers melt down,
outstanding requests pile up here and response times explode, which is the
visible symptom in Fig 5(b).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.ntier.balancer import Balancer
from repro.ntier.contention import APACHE_CONTENTION, ContentionModel
from repro.ntier.request import Request
from repro.ntier.server import TierServer
from repro.ntier.threadpool import ThreadPool
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Fraction of an Apache request's CPU demand spent before forwarding
#: downstream (parsing, routing); the rest is response assembly.
_FORWARD_SPLIT = 0.7


class ApacheServer(TierServer):
    """One Apache httpd instance."""

    tier = "web"

    def __init__(
        self,
        env: "Environment",
        name: str,
        app_balancer: Balancer,
        threads: int = 1000,
        contention: ContentionModel = APACHE_CONTENTION,
    ) -> None:
        super().__init__(env, name, contention)
        self.threads = ThreadPool(env, threads, name=f"{name}.threads")
        self.app_balancer = app_balancer

    def _process(
        self, request: Request, started_holder: list, **kwargs: Any
    ) -> Generator[Event, Any, None]:
        thread = yield from self.threads.checkout()
        try:
            # Inside the try so no statement can slip between obtaining the
            # thread and the finally that returns it.
            started_holder[0] = self.env.now
            demand = request.demand.apache
            yield self.cpu.execute(demand * _FORWARD_SPLIT)
            yield from self.app_balancer.dispatch(self.env, request)
            yield self.cpu.execute(demand * (1.0 - _FORWARD_SPLIT))
        finally:
            self.threads.checkin(thread)

    def snapshot(self) -> dict:
        """Extend the base counters with worker-pool statistics."""
        snap = super().snapshot()
        snap.update(
            {
                "pool_size": float(self.threads.size),
                "pool_busy": float(self.threads.busy),
                "pool_queued": float(self.threads.queued),
                "pool_occupancy_integral": self.threads.occupancy_integral(),
                "pool_wait_total": self.threads.wait_time_total,
            }
        )
        return snap
