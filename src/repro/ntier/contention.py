"""The ground-truth multi-threading contention law for tier servers.

Section III-B of the paper models the service time of one request when ``N``
threads execute concurrently as

    S*(N) = S0 + alpha*(N - 1) + beta*N*(N - 1)          (Eq 5)

with ``alpha`` capturing SMT-style thread contention (linear) and ``beta``
capturing cache-coherency "crosstalk" (quadratic).  Our simulated servers use
this law — **as an inflation ratio, which is scale-free** — as their physical
truth, so the paper's model (fitted in :mod:`repro.model`) is confronting a
system that genuinely behaves this way, plus one deliberate wrinkle:

The *thrash term*.  Real servers (most visibly MySQL in the paper's Fig 2(a)
and the Fig 5 incidents) degrade much harder beyond a certain concurrency
than the quadratic extrapolation suggests: lock convoys, buffer-pool
contention and context-switch storms pile up.  We add
``delta * max(0, N - knee)**2`` to ``S*``, active only past ``knee``.  This is
what makes hardware-only scaling *genuinely* harmful (doubling connection
pools into one MySQL), not merely sub-optimal; without it, the quadratic
alone prices 160 connections at only ~3 % below peak and neither Fig 2(b)
nor the Fig 5 response-time spikes can reproduce.  The model-training range
is kept mostly below the knee, so the paper's quadratic fit still achieves
its reported R² — exactly the situation the authors faced.

All parameters here are expressed in the *paper's* scale (Table I units);
only the ratios ``S*(N)/S*(1)`` reach the simulator, so the scale cancels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ContentionModel:
    """Concurrency-dependent service-time inflation for one server type.

    Parameters
    ----------
    s0:
        Single-threaded service time (paper scale; only ratios matter).
    alpha:
        Linear thread-contention coefficient (Eq 5).
    beta:
        Quadratic crosstalk coefficient (Eq 5).
    delta:
        Super-quadratic thrash coefficient, active past ``knee`` (0 disables).
    knee:
        Concurrency beyond which the thrash term applies.
    """

    s0: float
    alpha: float
    beta: float
    delta: float = 0.0
    knee: int = 0

    def __post_init__(self) -> None:
        if self.s0 <= 0:
            raise ConfigurationError(f"s0 must be positive, got {self.s0}")
        if self.alpha < 0 or self.beta < 0 or self.delta < 0:
            raise ConfigurationError("contention coefficients must be non-negative")
        if self.delta > 0 and self.knee < 1:
            raise ConfigurationError("a thrash term requires knee >= 1")

    # -- the law --------------------------------------------------------------
    def service_time(self, n: int) -> float:
        """``S*(n)``: per-request service time with ``n`` concurrent threads."""
        if n < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {n}")
        s = self.s0 + self.alpha * (n - 1) + self.beta * n * (n - 1)
        if self.delta > 0.0 and n > self.knee:
            s += self.delta * (n - self.knee) ** 2
        return s

    def inflation(self, n: int) -> float:
        """``phi(n) = S*(n)/S0`` — the scale-free factor used by the CPU."""
        return self.service_time(n) / self.s0

    def effective_service_time(self, n: int) -> float:
        """``S(n) = S*(n)/n``: the paper's Eq (6) average service time."""
        return self.service_time(n) / n

    def throughput(self, n: int, gamma: float = 1.0, servers: int = 1) -> float:
        """``X(n)`` from Eq (7): ``gamma * K * n / S*(n)`` (paper scale)."""
        return gamma * servers * n / self.service_time(n)

    # -- analytic optima -------------------------------------------------------
    def optimal_concurrency_quadratic(self) -> float:
        """Closed-form optimum ``N_b = sqrt((S0 - alpha)/beta)`` (Section III-C).

        This is the paper's formula and deliberately ignores the thrash term
        (the paper's model does not know about it either).  Raises when the
        quadratic has no interior optimum (``beta == 0`` or ``alpha >= S0``).
        """
        if self.beta <= 0:
            raise ConfigurationError("no interior optimum: beta must be positive")
        if self.alpha >= self.s0:
            raise ConfigurationError("no interior optimum: alpha >= s0")
        return math.sqrt((self.s0 - self.alpha) / self.beta)

    def optimal_concurrency(self, search_limit: int = 4096) -> int:
        """Exact integer optimum of ``n / S*(n)`` including the thrash term."""
        best_n, best_rate = 1, 1.0 / self.service_time(1)
        for n in range(2, search_limit + 1):
            rate = n / self.service_time(n)
            if rate > best_rate:
                best_n, best_rate = n, rate
        return best_n

    def peak_rate(self, search_limit: int = 4096) -> float:
        """Maximum of ``n / S*(n)`` (paper-scale requests per second)."""
        n = self.optimal_concurrency(search_limit)
        return n / self.service_time(n)


# ----------------------------------------------------------------------------
# Calibrated ground truths.
#
# The quadratic cores are the paper's Table I values verbatim.  Thrash terms
# are calibrated so that (a) MySQL at 160 connections loses ~20 % of its peak
# (the Fig 2(b)/Fig 5 failure mode), (b) Tomcat at its default 100 threads
# delivers ~30 % less than the optimal 20 (the Fig 4(a) margin), while (c)
# both fits over the training ranges keep R^2 ~ 0.96+ as Table I reports.
# ----------------------------------------------------------------------------

#: Ground-truth contention for a Tomcat application server (paper Table I core).
TOMCAT_CONTENTION = ContentionModel(
    s0=2.84e-2, alpha=9.87e-3, beta=4.54e-5, delta=3.75e-5, knee=60
)

#: Ground-truth contention for a MySQL database server (paper Table I core).
#: Thrash: X(160) ~ 0.80 * peak (the Fig 2(b) failure), steep collapse by 600
#: (Fig 2(a) tail); knee at 100 keeps the model-training range (<= 100)
#: quadratic so the fit recovers Table I.
MYSQL_CONTENTION = ContentionModel(
    s0=7.19e-3, alpha=5.04e-3, beta=1.65e-6, delta=5.04e-5, knee=100
)

#: Apache mostly shuffles bytes; give it mild contention and a distant knee so
#: the web tier is never the bottleneck in browse-only workloads (as in the
#: paper, which always runs a single Apache at 1000 threads).
APACHE_CONTENTION = ContentionModel(
    s0=1.0e-3, alpha=2.0e-7, beta=1.0e-9, delta=0.0, knee=0
)
