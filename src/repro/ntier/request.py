"""Request objects and fine-grained interaction tracing.

One :class:`Request` represents a single HTTP request from a client session.
As it flows Apache → Tomcat → MySQL it may trigger multiple *interactions*
(the paper: "an HTTP request may trigger multiple interactions between
component servers"); when tracing is enabled each interaction is recorded
with per-tier queueing and service timestamps, which is the "fine-grained
measurement data" DCM's monitor feeds on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.servlets import Servlet

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class DemandProfile:
    """Sampled CPU demands (single-threaded seconds) for one request.

    Demands are drawn once, when the request is created, from the servlet's
    distributions — so a request is fully determined at birth and the servers
    stay deterministic given their inputs.
    """

    apache: float
    tomcat: float
    db_queries: tuple[float, ...]

    @property
    def db_total(self) -> float:
        """Total DB demand across all queries of this request."""
        return sum(self.db_queries)


@dataclass
class Interaction:
    """One visit of a request to one component server."""

    server: str
    tier: str
    arrived: float
    started: Optional[float] = None
    completed: Optional[float] = None

    @property
    def queue_time(self) -> float:
        """Time spent waiting for admission (thread/connection) at the server."""
        if self.started is None:
            return 0.0
        return self.started - self.arrived

    @property
    def residence_time(self) -> float:
        """Total time spent at the server for this interaction."""
        if self.completed is None:
            return 0.0
        return self.completed - self.arrived


@dataclass
class Request:
    """A client HTTP request and its life-cycle record."""

    servlet: "Servlet"
    created: float
    demand: DemandProfile
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed: Optional[float] = None
    failed: bool = False
    failure_reason: str = ""
    interactions: Optional[List[Interaction]] = None
    #: Application data key this request touches (``None`` for keyless
    #: workloads — the paper's browse-only mix has no notion of identity).
    #: Stateful tiers route on it: the cache tier keys its entries and the
    #: shard router maps it onto the consistent-hash ring.
    key: Optional[int] = None
    #: Whether this request mutates its key (write servlets).  Writes go to
    #: the shard primary and invalidate the cache entry; reads may hit any
    #: replica.
    is_write: bool = False
    #: DB transactions committed on behalf of this request (incremented by
    #: MySQL at query *completion*).  The retry policy's idempotency guard
    #: reads it: a request whose commit count moved since the failed attempt
    #: began must not be replayed, or committed work would be duplicated.
    db_commits: int = 0
    #: DB queries *admitted for execution* on behalf of this request
    #: (incremented by MySQL just before the query starts).  The guard needs
    #: this too: a crash can fail the client-side attempt while a query is
    #: still executing server-side, and that orphan may commit *after* the
    #: retry decision — ``db_started`` is always ahead of such orphans.
    db_started: int = 0

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end response time; ``None`` while in flight."""
        if self.completed is None:
            return None
        return self.completed - self.created

    def trace(self, server: str, tier: str, arrived: float) -> Optional[Interaction]:
        """Record a new interaction if tracing is enabled for this request."""
        if self.interactions is None:
            return None
        interaction = Interaction(server=server, tier=tier, arrived=arrived)
        self.interactions.append(interaction)
        return interaction

    def enable_tracing(self) -> None:
        """Turn on per-interaction recording for this request."""
        if self.interactions is None:
            self.interactions = []
