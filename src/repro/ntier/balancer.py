"""HAProxy-style load balancer with runtime membership changes.

The paper fronts every scalable tier (Tomcat, and MySQL when replicated)
with HAProxy.  The balancer's behaviour matters to DCM in two ways:

* **Membership churn** — the VM-agent adds freshly-booted servers and drains
  servers marked for removal, without dropping in-flight requests.
* **Imperfect balance** — the paper's correction factor γ in Eq (4) exists
  because "the load imbalancing problem among servers" keeps K servers from
  delivering K× one server's throughput.  We model this with a configurable
  ``imbalance`` probability: that fraction of picks bypasses the policy and
  goes to the *first* eligible backend — a persistent skew of the
  sticky-session / hash-affinity kind.  Its throughput cost interacts with
  the concurrency curve: skew is nearly free while both servers sit on the
  flat part of Fig 2(a), and expensive once the favourite crosses the
  thrash knee (see ``bench_ablation_balance.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.server import TierServer

#: Valid balancing policies.
POLICIES = ("round_robin", "least_conn", "random")


class Balancer:
    """Distributes work over a dynamic set of backend servers.

    Parameters
    ----------
    name:
        Label (e.g. ``"haproxy-app"``).
    policy:
        One of :data:`POLICIES`.
    imbalance:
        Probability in ``[0, 1]`` that a pick ignores the policy and goes to
        the first eligible backend — the knob behind the paper's γ < linear
        scaling.
    rng:
        numpy Generator used for the imbalance/random draws.  Required for
        stochastic configurations (``policy="random"`` or ``imbalance > 0``)
        and must come from the experiment's
        :class:`~repro.sim.rng.RandomStreams` so draws are reproducible
        from the root seed; deterministic policies may omit it.
    """

    def __init__(
        self,
        name: str,
        policy: str = "least_conn",
        imbalance: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown policy {policy!r}; pick from {POLICIES}")
        if not 0.0 <= imbalance <= 1.0:
            raise ConfigurationError(f"imbalance must be in [0, 1], got {imbalance}")
        if rng is None and (policy == "random" or imbalance > 0.0):
            raise ConfigurationError(
                f"{name}: policy={policy!r} with imbalance={imbalance} draws "
                "random numbers; pass a generator from RandomStreams"
            )
        self.name = name
        self.policy = policy
        self.imbalance = imbalance
        self._rng = rng
        self._backends: List["TierServer"] = []
        # Monotonic registration order, used as the least_conn tie-break.
        # Breaking ties on the *name* sorts lexicographically ("tomcat-10"
        # before "tomcat-2"), silently reordering ties once a tier reaches
        # ten servers; the numeric join index never does.
        self._reg_index: dict = {}
        self._reg_seq = 0
        # Round-robin cursor: the *last picked* backend plus a numeric
        # fallback position, so the rotation survives membership churn
        # (see ``pick``) instead of taking a modulo over a shifting list.
        self._rr_last: Optional["TierServer"] = None
        self._rr_index = 0
        self._dispatches = 0
        # Resilience-policy chain wrapped around ``dispatch`` (see
        # repro.faults.policies).  ``None`` keeps the historical pick+handle
        # path untouched, which golden-digest tests pin bit-for-bit.
        self._chain: Optional[Callable] = None
        self._partitioned = False

    # -- membership -------------------------------------------------------------
    @property
    def backends(self) -> Sequence["TierServer"]:
        """All registered backends (including draining ones)."""
        return tuple(self._backends)

    def eligible(self) -> List["TierServer"]:
        """Backends currently accepting new work (none while partitioned)."""
        if self._partitioned:
            return []
        return [b for b in self._backends if b.accepting]

    @property
    def size(self) -> int:
        """Number of backends accepting new work."""
        return len(self.eligible())

    def add(self, server: "TierServer") -> None:
        """Register a backend (idempotent additions are an error)."""
        if server in self._backends:
            raise TopologyError(f"{server.name} already behind {self.name}")
        self._backends.append(server)
        self._reg_index[server] = self._reg_seq
        self._reg_seq += 1

    def remove(self, server: "TierServer") -> None:
        """Deregister a backend entirely (it should be drained first)."""
        try:
            self._backends.remove(server)
        except ValueError:
            raise TopologyError(f"{server.name} is not behind {self.name}") from None
        self._reg_index.pop(server, None)

    # -- picking ------------------------------------------------------------------
    def pick(self) -> "TierServer":
        """Choose a backend for one new request/query.

        Raises :class:`TopologyError` when no backend is accepting — callers
        turn that into a failed request.
        """
        candidates = self.eligible()
        if not candidates:
            raise TopologyError(f"{self.name}: no backend available")
        self._dispatches += 1
        if len(candidates) == 1:
            if self.policy == "round_robin":
                self._rr_last = candidates[0]
                self._rr_index = 1
            return candidates[0]
        if self.imbalance > 0.0 and self._rng.random() < self.imbalance:
            return candidates[0]
        if self.policy == "round_robin":
            # Anchor the rotation to the last picked backend: the next pick
            # is its successor in the *current* eligible list, so the first
            # ever pick goes to backend 0 and membership churn (drains,
            # additions) never double-picks or starves a survivor.  When the
            # last pick left the pool, fall back to the numeric position it
            # occupied, clamped into the new list.
            idx = self._rr_index
            if self._rr_last is not None:
                try:
                    idx = candidates.index(self._rr_last) + 1
                except ValueError:
                    # The last pick left the pool; its successor now sits at
                    # the position the departed backend occupied.
                    idx = max(0, idx - 1)
            if idx >= len(candidates):
                idx = 0
            chosen = candidates[idx]
            self._rr_last = chosen
            self._rr_index = idx + 1
            return chosen
        if self.policy == "least_conn":
            reg = self._reg_index
            return min(candidates, key=lambda b: (b.outstanding, reg.get(b, 0)))
        return candidates[int(self._rng.integers(len(candidates)))]

    def pick_for(self, request) -> "TierServer":
        """Choose a backend for ``request``.

        The plain balancer ignores the request (all backends are
        interchangeable); key-aware subclasses (the shard router) route on
        ``request.key``.  Dispatch and the resilience chains go through this
        hook so retries re-route each attempt.
        """
        return self.pick()

    @property
    def dispatches(self) -> int:
        """Total picks made."""
        return self._dispatches

    # -- faults & resilience ------------------------------------------------------
    @property
    def partitioned(self) -> bool:
        """Whether a TierPartition fault currently severs this edge."""
        return self._partitioned

    def set_partitioned(self, partitioned: bool) -> None:
        """Sever (or heal) the link to every backend.

        While partitioned, :meth:`eligible` is empty, so :meth:`pick` raises
        :class:`TopologyError` — upstream servers fail the request fast
        (connection refused) rather than queueing into a black hole.
        """
        self._partitioned = bool(partitioned)

    def install_policy(self, chain: Optional[Callable]) -> None:
        """Wrap :meth:`dispatch` in a resilience-policy chain.

        ``chain(env, balancer, request, kwargs)`` must be a generator
        function; ``None`` restores the bare pick+handle path.
        """
        self._chain = chain

    def dispatch(self, env, request, **kwargs):
        """Route one request through the (optional) resilience chain.

        Generator — call sites drive it with ``yield from``.  With no chain
        installed this emits exactly the event sequence of the historical
        ``pick()`` + ``yield handle()`` pair, keeping digests bit-identical.
        """
        if self._chain is None:
            server = self.pick_for(request)
            result = yield server.handle(request, **kwargs)
            return result
        return (yield from self._chain(env, self, request, kwargs))


def drain_and_wait(server: "TierServer") -> Callable:
    """Convenience: returns a process generator that drains ``server`` and
    finishes when its last in-flight request completes."""

    def _proc(env):
        server.begin_drain()
        yield server.drained_event()

    return _proc
