"""Sharded + replicated MySQL tier: consistent hashing and read/write routing.

The paper's db tier is multi-master — every MySQL accepts every query, and
the balancer spreads load evenly.  Real deployments at scale shard: a
consistent-hash ring maps each request *key* to one shard, each shard being
a primary plus N read replicas.  Load is then only as balanced as the key
popularity is flat; a Zipf-skewed keyspace concentrates traffic on a hot
shard, which is exactly the regime where DCM's per-server concurrency caps
(S*(N) knees) and hardware-only scaling diverge (see
``benchmarks/bench_skewed_shards.py``).

Components:

* :class:`ShardingSpec` — frozen, JSON-round-tripping configuration carried
  by ``ScenarioSpec.sharding`` (schema v4).
* :class:`ConsistentHashRing` — hashlib-based ring with virtual nodes
  (salted ``hash()`` would break cross-process determinism).
* :class:`ShardRouter` — a drop-in :class:`~repro.ntier.balancer.Balancer`
  for the db tier.  ``pick_for(request)`` maps ``request.key`` to a shard,
  sends writes to the shard primary and reads through a per-shard balancer
  (own named random stream, so unsharded digests never move).  Per-shard
  ``routed`` counters plus member server counters give the
  ``shard_conservation`` audit its ledger.

Scale-out servers joining without a shard assignment (the VM-agent's
``add_mysql()``) become replicas of the *hottest* shard — the only
reinforcement that helps under skew.  Primary failover is explicit:
:meth:`ShardRouter.promote` elevates the first accepting replica (used by
the ``shard_primary_crash`` fault).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.ntier.balancer import Balancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.mysql import MySQLServer
    from repro.ntier.request import Request


@dataclass(frozen=True)
class ShardingSpec:
    """Configuration of the sharded db tier.

    ``keys`` / ``zipf`` describe the keyed workload driving the ring (shared
    with the cache tier when both are configured — the two must agree).
    When sharding is set, the db tier holds ``shards * (1 + replicas)``
    servers; the scenario's ``hardware`` db count is superseded.
    """

    shards: int = 2
    replicas: int = 1
    virtual_nodes: int = 64
    keys: int = 10000
    zipf: float = 1.1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {self.replicas}")
        if self.virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.keys < 1:
            raise ConfigurationError(f"keys must be >= 1, got {self.keys}")
        if self.zipf < 0:
            raise ConfigurationError(f"zipf exponent must be >= 0, got {self.zipf}")

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "replicas": self.replicas,
            "virtual_nodes": self.virtual_nodes,
            "keys": self.keys,
            "zipf": self.zipf,
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "ShardingSpec":
        return cls(**obj)


def _ring_hash(text: str) -> int:
    """Stable 64-bit ring position (Python's ``hash()`` is salted per run)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """A consistent-hash ring over integer shard ids with virtual nodes.

    Each shard contributes ``virtual_nodes`` points; a key lands on the
    first point clockwise from its own hash.  Virtual nodes keep the
    per-shard keyspace share close to uniform, so residual skew comes from
    key *popularity*, not from ring geometry.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._points: List[tuple] = []  # sorted (hash, shard_id)
        self._nodes: set = set()

    def add_node(self, node: int) -> None:
        """Add a shard's virtual nodes to the ring."""
        if node in self._nodes:
            raise ConfigurationError(f"shard {node} already on the ring")
        self._nodes.add(node)
        for v in range(self.virtual_nodes):
            insort(self._points, (_ring_hash(f"shard-{node}#{v}"), node))

    def remove_node(self, node: int) -> None:
        """Remove a shard's virtual nodes (its keyspace folds into neighbours)."""
        if node not in self._nodes:
            raise ConfigurationError(f"shard {node} is not on the ring")
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    def lookup(self, key: int) -> int:
        """The shard owning ``key``."""
        if not self._points:
            raise TopologyError("consistent-hash ring has no nodes")
        h = _ring_hash(f"key:{key}")
        idx = bisect_right(self._points, (h, float("inf")))
        if idx == len(self._points):
            idx = 0  # wrap past the highest point
        return self._points[idx][1]

    def nodes(self) -> List[int]:
        """Shard ids currently on the ring, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class Shard:
    """One shard: a primary, its read replicas, and its routing ledger."""

    def __init__(self, index: int, balancer: Balancer) -> None:
        self.index = index
        #: Read-routing balancer over the shard's accepting members.
        self.balancer = balancer
        self.primary: Optional["MySQLServer"] = None
        self.replicas: List["MySQLServer"] = []
        #: Members deregistered at runtime (crash / scale-in); their counters
        #: still belong to this shard's conservation ledger.
        self.retired: List["MySQLServer"] = []
        #: Queries the router sent into this shard (each one arrives at a
        #: member server — the conservation audit checks exactly that).
        self.routed = 0

    def members(self) -> List["MySQLServer"]:
        """Live members, primary first."""
        out: List["MySQLServer"] = []
        if self.primary is not None:
            out.append(self.primary)
        out.extend(self.replicas)
        return out

    def stats(self) -> Dict[str, Any]:
        """Conservation ledger: routed vs member-server counters."""
        everyone = self.members() + self.retired
        completed = sum(s.completions for s in everyone)
        failed = sum(s.failures for s in everyone)
        arrivals = sum(s.arrivals for s in everyone)
        return {
            "routed": self.routed,
            "arrivals": arrivals,
            "completed": completed,
            "failed": failed,
            "inflight": arrivals - completed - failed,
            "servers": [s.name for s in everyone],
            "primary": None if self.primary is None else self.primary.name,
        }


class ShardRouter(Balancer):
    """Key-aware db-tier balancer: consistent hashing + per-shard routing.

    A drop-in replacement for the db :class:`Balancer` — membership
    (``add``/``remove``), draining, partitions and resilience chains all
    work unchanged, but ``pick_for(request)`` routes by ``request.key``:
    writes to the shard primary, reads through the shard's own balancer.
    Requests without a key (keyless workloads against a sharded tier) fall
    back to hashing the request id, which spreads them uniformly.

    ``shard_stream`` supplies each per-shard balancer's random generator
    (named streams like ``balancer.db.shard-0``), keeping draws independent
    of the unsharded ``balancer.db`` stream.
    """

    def __init__(
        self,
        name: str,
        spec: ShardingSpec,
        policy: str = "least_conn",
        imbalance: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        shard_stream: Optional[Callable[[int], np.random.Generator]] = None,
    ) -> None:
        super().__init__(name, policy=policy, imbalance=imbalance, rng=rng)
        self.spec = spec
        self.ring = ConsistentHashRing(spec.virtual_nodes)
        self._shards: Dict[int, Shard] = {}
        for sid in range(spec.shards):
            sub_rng = shard_stream(sid) if shard_stream is not None else rng
            sub = Balancer(
                f"{name}.shard-{sid}",
                policy=policy,
                imbalance=imbalance,
                rng=sub_rng,
            )
            self._shards[sid] = Shard(sid, sub)
            self.ring.add_node(sid)

    # -- shard access -----------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of shards (fixed for the lifetime of the router)."""
        return len(self._shards)

    def shard(self, sid: int) -> Shard:
        """The shard with index ``sid``."""
        try:
            return self._shards[sid]
        except KeyError:
            raise TopologyError(
                f"{self.name}: no shard {sid} (have 0..{len(self._shards) - 1})"
            ) from None

    def shard_for_key(self, key: int) -> Shard:
        """The shard owning ``key`` on the ring."""
        return self._shards[self.ring.lookup(key)]

    def hottest_shard(self) -> int:
        """The shard that has routed the most queries (ties: lowest id)."""
        return max(self._shards, key=lambda sid: (self._shards[sid].routed, -sid))

    def shard_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard conservation ledgers, by shard id."""
        return {sid: shard.stats() for sid, shard in sorted(self._shards.items())}

    # -- membership ---------------------------------------------------------------
    def add(self, server: "MySQLServer") -> None:
        """Register a db server, assigning it to its shard.

        Servers carrying an explicit ``shard`` join that shard with their
        declared ``role``; unassigned servers (the VM-agent's generic
        scale-out) become replicas of the hottest shard.
        """
        super().add(server)
        sid = getattr(server, "shard", None)
        role = getattr(server, "role", "standalone")
        if sid is None:
            sid = self.hottest_shard()
            server.shard = sid
            role = "replica"
            server.role = role
        shard = self.shard(sid)
        if role == "primary":
            if shard.primary is not None:
                super().remove(server)
                raise TopologyError(
                    f"{self.name}: shard {sid} already has primary "
                    f"{shard.primary.name}"
                )
            shard.primary = server
        else:
            if role != "replica":
                server.role = "replica"
            shard.replicas.append(server)
        shard.balancer.add(server)

    def remove(self, server: "MySQLServer") -> None:
        """Deregister a db server; its counters stay on the shard's ledger.

        Removing a primary immediately fails over to the first accepting
        replica — graceful scale-in must not leave a shard unable to take
        writes while it still has members.
        """
        super().remove(server)
        shard = self.shard(server.shard)
        if shard.primary is server:
            shard.primary = None
            self.promote(server.shard)
        elif server in shard.replicas:
            shard.replicas.remove(server)
        shard.balancer.remove(server)
        shard.retired.append(server)

    def promote(self, sid: int) -> Optional["MySQLServer"]:
        """Primary failover: elevate the first accepting replica of ``sid``.

        Returns the promoted server, or ``None`` when the shard has no
        accepting replica (writes to it keep failing until one joins).
        """
        shard = self.shard(sid)
        if shard.primary is not None:
            return shard.primary
        for replica in shard.replicas:
            if replica.accepting:
                shard.replicas.remove(replica)
                replica.role = "primary"
                shard.primary = replica
                return replica
        return None

    # -- routing --------------------------------------------------------------------
    def pick_for(self, request: "Request") -> "MySQLServer":
        """Route one query: ring lookup, then primary (write) or replica
        balancer (read).  Raises :class:`TopologyError` when the owning
        shard cannot serve the query — a *sharded* tier fails partially,
        unlike the all-or-nothing plain balancer."""
        if self._partitioned:
            raise TopologyError(f"{self.name}: no backend available")
        key = request.key if request.key is not None else request.request_id
        sid = self.ring.lookup(key)
        shard = self._shards[sid]
        if request.is_write:
            primary = shard.primary
            if primary is None or not primary.accepting:
                raise TopologyError(
                    f"{self.name}: shard {sid} has no accepting primary"
                )
            chosen = primary
        else:
            try:
                chosen = shard.balancer.pick()
            except TopologyError:
                raise TopologyError(
                    f"{self.name}: shard {sid} has no accepting member"
                ) from None
        self._dispatches += 1
        shard.routed += 1
        return chosen
