"""Base class shared by all component servers (Apache, Tomcat, MySQL).

A :class:`TierServer` owns a :class:`~repro.sim.processor.ContentionProcessor`
(its CPU, governed by the tier's ground-truth contention law) and exposes the
cumulative counters the monitoring agent samples every second:
arrivals/completions/failures, residence-time sums, CPU-utilization and
concurrency integrals, and pool statistics.  Subclasses implement
:meth:`_process` — a generator describing how one interaction flows through
the server.

Life-cycle: a server starts ``accepting``; :meth:`begin_drain` stops new
admissions (HAProxy keeps it registered but stops picking it) and
:meth:`drained_event` fires when the last in-flight interaction completes —
the hand-off point at which the VM-agent may terminate the underlying VM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.check import config as _checks
from repro.errors import InvariantViolation, TopologyError
from repro.ntier.contention import ContentionModel
from repro.ntier.request import Request
from repro.sim.events import Event, Process
from repro.sim.processor import ContentionProcessor

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class TierServer:
    """One component server instance within a tier."""

    #: Subclasses set this ("web", "app", "db").
    tier: str = "generic"

    def __init__(
        self,
        env: "Environment",
        name: str,
        contention: ContentionModel,
        peak_search_limit: int = 2048,
    ) -> None:
        self.env = env
        self.name = name
        self.contention = contention
        self.cpu = ContentionProcessor(
            env, contention.inflation, peak_search_limit=peak_search_limit, name=name
        )
        self._accepting = True
        self._draining = False
        self._drained_event: Optional[Event] = None

        # Cumulative counters (the monitor computes windowed deltas).
        self.arrivals = 0
        self.completions = 0
        self.failures = 0
        self.residence_time_total = 0.0
        self.queue_time_total = 0.0
        # Independent in-flight ledger: incremented on admission, decremented
        # on completion/failure.  ``outstanding`` is *derived* from the
        # cumulative counters, so the sanitizer can cross-check the two and
        # catch double-counted or lost requests (request conservation).
        self._inflight = 0
        # Live interaction processes, insertion-ordered so a crash kills
        # them deterministically.  Populated by ``handle``; reaped on exit.
        self._live: Dict[Process, None] = {}
        # Extra per-interaction network delay on admission (LatencySpike
        # fault).  Exactly 0.0 yields no event — zero-cost when unused.
        self.ingress_latency = 0.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} outstanding={self.outstanding}>"

    # -- admission state ---------------------------------------------------------
    @property
    def accepting(self) -> bool:
        """Whether the balancer may send new work here."""
        return self._accepting and not self._draining

    @property
    def draining(self) -> bool:
        """Whether the server is finishing in-flight work before shutdown."""
        return self._draining

    @property
    def outstanding(self) -> int:
        """Interactions currently in flight (queued or in service)."""
        return self.arrivals - self.completions - self.failures

    @property
    def inflight(self) -> int:
        """Independently tracked in-flight count (sanitizer cross-check)."""
        return self._inflight

    def set_accepting(self, value: bool) -> None:
        """Administratively enable/disable admission (VM lifecycle hook)."""
        self._accepting = bool(value)

    def begin_drain(self) -> None:
        """Stop accepting new work; in-flight interactions run to completion."""
        self._draining = True
        self._maybe_finish_drain()

    def cancel_drain(self) -> None:
        """Abort a drain (e.g. the controller changed its mind)."""
        self._draining = False
        self._drained_event = None

    def drained_event(self) -> Event:
        """Event firing once draining and ``outstanding == 0``."""
        if self._drained_event is None:
            self._drained_event = Event(self.env)
            self._maybe_finish_drain()
        return self._drained_event

    def _maybe_finish_drain(self) -> None:
        if (
            self._draining
            and self.outstanding == 0
            and self._drained_event is not None
            and not self._drained_event.triggered
        ):
            self._drained_event.succeed(self)

    def crash(self, reason: str = "crash") -> int:
        """Kill the server: stop admissions, abort every in-flight interaction.

        Models an abrupt VM/process death (no drain, no goodbye).  Each live
        interaction process is interrupted; the interrupt surfaces inside
        :meth:`_handle`, which records a failure — so conservation holds
        (``arrivals == completions + failures``) even across a crash.
        Returns the number of interactions killed.
        """
        self._accepting = False
        killed = 0
        for proc in list(self._live):
            if not proc.is_alive:
                continue
            target = proc.target
            proc.interrupt(reason)
            killed += 1
            if target is None:
                continue
            cancel = getattr(target, "cancel", None)
            if cancel is not None:
                # Queued pool acquisition (thread / db connection): withdraw
                # it, or the pool would later grant a slot to a dead event
                # and leak capacity permanently.
                cancel()
            elif isinstance(target, Process):
                # The interaction was waiting on a downstream interaction.
                # That child keeps running; absorb its eventual outcome so a
                # failure with no remaining observer cannot crash env.run()
                # (the child's own server still accounts it).
                target.callbacks.append(lambda _evt: None)
        return killed

    # -- request handling ------------------------------------------------------
    def handle(self, request: Request, **kwargs: Any) -> Event:
        """Process one interaction of ``request``; returns its completion event.

        Wraps the subclass :meth:`_process` generator with arrival/completion
        accounting and optional fine-grained tracing.  Extra keyword
        arguments are forwarded to :meth:`_process` (MySQL receives the
        per-query ``demand`` this way).
        """
        if not self.accepting:
            raise TopologyError(f"{self.name} is not accepting requests")
        self.arrivals += 1
        self._inflight += 1
        arrived = self.env.now
        interaction = request.trace(self.name, self.tier, arrived)
        proc = self.env.process(self._handle(request, arrived, interaction, kwargs))
        self._live[proc] = None
        proc.callbacks.append(self._reap)
        return proc

    def _reap(self, proc: Event) -> None:
        self._live.pop(proc, None)

    def _handle(self, request, arrived, interaction, kwargs) -> Generator[Event, Any, None]:
        try:
            started_holder = [arrived]
            if self.ingress_latency > 0.0:
                yield self.env.timeout(self.ingress_latency)
            yield from self._process(request, started_holder, **kwargs)
        except Exception:
            self.failures += 1
            self._inflight -= 1
            self._check_conservation()
            self._maybe_finish_drain()
            raise
        now = self.env.now
        self.completions += 1
        self._inflight -= 1
        self.residence_time_total += now - arrived
        self.queue_time_total += started_holder[0] - arrived
        if interaction is not None:
            interaction.started = started_holder[0]
            interaction.completed = now
        self._check_conservation()
        self._maybe_finish_drain()

    def _check_conservation(self) -> None:
        """Sanitizer hook: arrived == completed + dropped + in-flight."""
        if not _checks.active("conservation"):
            return
        if (self._inflight != self.outstanding or self._inflight < 0
                or self.completions < 0 or self.failures < 0):
            raise InvariantViolation(
                self.name, "request-conservation", self.env.now,
                f"arrived={self.arrivals} != completed={self.completions} "
                f"+ dropped={self.failures} + in_flight={self._inflight}",
            )

    def _process(
        self, request: Request, started_holder: list, **kwargs: Any
    ) -> Generator[Event, Any, None]:
        """Subclass hook: the server-specific flow for one interaction.

        ``started_holder`` is a single-element list; implementations store
        the time at which the interaction obtained its thread/slot (i.e.
        left the admission queue) in ``started_holder[0]``.
        """
        raise NotImplementedError

    # -- monitoring --------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """Instantaneous request-processing concurrency on the CPU."""
        return self.cpu.active_jobs

    def snapshot(self) -> Dict[str, float]:
        """Cumulative counters for the monitoring agent (delta-friendly)."""
        return {
            "arrivals": float(self.arrivals),
            "completions": float(self.completions),
            "failures": float(self.failures),
            "residence_time_total": self.residence_time_total,
            "queue_time_total": self.queue_time_total,
            "cpu_util_integral": self.cpu.utilization_integral(),
            "cpu_eff_integral": self.cpu.efficiency_integral(),
            "cpu_busy_integral": self.cpu.busy_integral(),
            "cpu_nonidle_integral": self.cpu.nonidle_integral(),
            "outstanding": float(self.outstanding),
        }
