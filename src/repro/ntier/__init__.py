"""The n-tier application substrate.

Simulated Apache / Tomcat / MySQL component servers with the soft resources
the paper manipulates (thread pools, DB connection pools), HAProxy-style
balancers, the ground-truth concurrency-contention law, and the
:class:`~repro.ntier.topology.NTierSystem` assembly with runtime scaling.
"""

from repro.ntier.apache import ApacheServer
from repro.ntier.balancer import Balancer
from repro.ntier.cache import CACHE_CONTENTION, CacheServer, CacheSpec, CacheTier
from repro.ntier.connpool import ConnectionPool
from repro.ntier.contention import (
    APACHE_CONTENTION,
    MYSQL_CONTENTION,
    TOMCAT_CONTENTION,
    ContentionModel,
)
from repro.ntier.mysql import MySQLServer
from repro.ntier.request import DemandProfile, Interaction, Request
from repro.ntier.server import TierServer
from repro.ntier.sharding import (
    ConsistentHashRing,
    Shard,
    ShardingSpec,
    ShardRouter,
)
from repro.ntier.softconfig import (
    DEFAULT_MAX_CONNECTIONS,
    HardwareConfig,
    SoftResourceConfig,
)
from repro.ntier.threadpool import ThreadPool
from repro.ntier.tomcat import TomcatServer
from repro.ntier.topology import NTierSystem

__all__ = [
    "APACHE_CONTENTION",
    "ApacheServer",
    "Balancer",
    "CACHE_CONTENTION",
    "CacheServer",
    "CacheSpec",
    "CacheTier",
    "ConnectionPool",
    "ConsistentHashRing",
    "ContentionModel",
    "DEFAULT_MAX_CONNECTIONS",
    "DemandProfile",
    "HardwareConfig",
    "Interaction",
    "MYSQL_CONTENTION",
    "MySQLServer",
    "NTierSystem",
    "Request",
    "Shard",
    "ShardRouter",
    "ShardingSpec",
    "SoftResourceConfig",
    "TOMCAT_CONTENTION",
    "ThreadPool",
    "TierServer",
    "TomcatServer",
]
