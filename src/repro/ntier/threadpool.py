"""Resizable server thread pool (STP) — a soft resource.

A thin domain wrapper over :class:`repro.sim.resources.Resource` adding the
wait-time accounting that the monitoring agent reports.  The APP-agent
resizes these pools at runtime ("adjusting the STP size", Section IV-B);
growth admits queued requests immediately, shrinkage drains lazily, matching
live reconfiguration of Tomcat's ``maxThreads``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.events import Event
from repro.sim.resources import Acquire, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class ThreadPool:
    """A server's worker-thread pool.

    Parameters
    ----------
    env:
        Owning environment.
    size:
        Initial ``maxThreads``.
    name:
        Label used in metrics and logs.
    """

    def __init__(self, env: "Environment", size: int, name: str = "threads") -> None:
        self.env = env
        self.name = name
        self._resource = Resource(env, size, name=name)
        self._acquisitions = 0
        self._wait_time_total = 0.0

    # -- soft-resource control -------------------------------------------------
    @property
    def size(self) -> int:
        """Current configured pool size."""
        return self._resource.capacity

    def resize(self, size: int) -> None:
        """Reconfigure the pool size on the fly (the APP-agent's knob)."""
        self._resource.resize(size)

    # -- usage -------------------------------------------------------------------
    @property
    def busy(self) -> int:
        """Threads currently checked out."""
        return self._resource.in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a thread."""
        return self._resource.queue_length

    @property
    def acquisitions(self) -> int:
        """Total threads ever granted (for rate metrics)."""
        return self._acquisitions

    @property
    def wait_time_total(self) -> float:
        """Cumulative time requests spent queued for a thread."""
        return self._wait_time_total

    def occupancy_integral(self) -> float:
        """Time integral of ``busy`` (for time-averaged occupancy)."""
        return self._resource.occupancy_integral()

    def checkout(self) -> Generator[Event, object, Acquire]:
        """Generator helper: ``thread = yield from pool.checkout()``.

        Accounts queueing delay; the caller must later call
        :meth:`checkin` with the returned handle.
        """
        asked = self.env.now
        req = self._resource.acquire()
        try:
            yield req
        except BaseException:
            # The waiting process died at the yield (crash interrupt, kernel
            # shutdown): withdraw a still-queued request, or give back a slot
            # that was granted in the same timestep but never resumed us —
            # cancel() returns False exactly when the grant already happened.
            if not req.cancel() and req.granted:
                self._resource.release(req)
            raise
        self._acquisitions += 1
        self._wait_time_total += self.env.now - asked
        return req

    def acquire(self) -> Acquire:
        """Low-level acquire (no wait accounting); see :meth:`checkout`."""
        return self._resource.acquire()

    def checkin(self, handle: Acquire) -> None:
        """Return a thread to the pool."""
        self._resource.release(handle)
