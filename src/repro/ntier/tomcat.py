"""Tomcat application server model.

The concurrency battleground of the paper.  Two soft resources live here:

* the **thread pool** (``maxThreads``, the paper's ``#A_T``) — bounds how
  many requests this Tomcat processes concurrently.  DCM controls Tomcat's
  request-processing concurrency by resizing this pool directly
  (Section IV-B, first mechanism);
* the **global DB connection pool** (``#A_C``) — bounds how many of this
  Tomcat's queries can be in flight at MySQL.  DCM controls *MySQL's*
  concurrency by resizing this upstream pool (second mechanism).

A request holds its Tomcat thread for its whole stay — including while it
blocks on the connection pool and on MySQL.  That coupling is what makes the
paper's pathology systemic: a slow MySQL captures Tomcat threads, the thread
pool exhausts, and queueing cascades back to Apache.  Only threads actually
executing servlet code occupy the CPU and contribute to its contention level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.ntier.balancer import Balancer
from repro.ntier.connpool import ConnectionPool
from repro.ntier.contention import TOMCAT_CONTENTION, ContentionModel
from repro.ntier.request import Request
from repro.ntier.server import TierServer
from repro.ntier.threadpool import ThreadPool
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.cache import CacheTier
    from repro.sim.core import Environment

#: Fraction of a servlet's Tomcat CPU demand executed before its DB queries
#: (business logic & query construction); the rest renders the response.
_PRE_QUERY_SPLIT = 0.6


class TomcatServer(TierServer):
    """One Tomcat instance with its two soft-resource pools."""

    tier = "app"

    def __init__(
        self,
        env: "Environment",
        name: str,
        db_balancer: Balancer,
        threads: int = 100,
        db_connections: int = 80,
        contention: ContentionModel = TOMCAT_CONTENTION,
        cache: "Optional[CacheTier]" = None,
    ) -> None:
        super().__init__(env, name, contention)
        self.threads = ThreadPool(env, threads, name=f"{name}.threads")
        self.db_pool = ConnectionPool(env, db_connections, name=f"{name}.dbconnp")
        self.db_balancer = db_balancer
        #: Cache-aside tier consulted before the db-query loop (``None`` in
        #: cacheless deployments — that path is event-identical to the
        #: pre-cache servers, which the golden digests pin).
        self.cache = cache

    def _process(
        self, request: Request, started_holder: list, **kwargs: Any
    ) -> Generator[Event, Any, None]:
        thread = yield from self.threads.checkout()
        try:
            # Inside the try so no statement can slip between obtaining the
            # thread and the finally that returns it.
            started_holder[0] = self.env.now
            demand = request.demand.tomcat
            yield self.cpu.execute(demand * _PRE_QUERY_SPLIT)
            use_cache = self.cache is not None and request.key is not None
            hit = False
            if use_cache and not request.is_write:
                hit = yield from self.cache.lookup(request)
            if not hit:
                # A hit bypasses the whole app→db hop: no connection is
                # checked out and no query dispatched, so the db tier sees
                # only the miss fraction of the HTTP arrival rate.
                for query_demand in request.demand.db_queries:
                    conn = yield from self.db_pool.checkout()
                    try:
                        yield from self.db_balancer.dispatch(
                            self.env, request, demand=query_demand
                        )
                    finally:
                        self.db_pool.checkin(conn)
                if use_cache:
                    if request.is_write:
                        yield from self.cache.invalidate(request)
                    else:
                        yield from self.cache.insert(request)
            yield self.cpu.execute(demand * (1.0 - _PRE_QUERY_SPLIT))
        finally:
            self.threads.checkin(thread)

    def snapshot(self) -> dict:
        """Extend the base counters with both pools' statistics."""
        snap = super().snapshot()
        snap.update(
            {
                "pool_size": float(self.threads.size),
                "pool_busy": float(self.threads.busy),
                "pool_queued": float(self.threads.queued),
                "pool_occupancy_integral": self.threads.occupancy_integral(),
                "pool_wait_total": self.threads.wait_time_total,
                "dbconnp_size": float(self.db_pool.size),
                "dbconnp_in_use": float(self.db_pool.in_use),
                "dbconnp_queued": float(self.db_pool.queued),
                "dbconnp_occupancy_integral": self.db_pool.occupancy_integral(),
                "dbconnp_wait_total": self.db_pool.wait_time_total,
            }
        )
        return snap
