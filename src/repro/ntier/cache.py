"""Distributed cache tier: cache-aside lookups that bypass the db hop.

A memcached-style tier between Tomcat and MySQL.  Each HTTP request with a
key consults the cache once, before opening a db connection: a **hit**
skips the request's entire db-query loop (so the db tier's arrival rate
becomes ``(1 - hit_rate) * λ_app``), a **miss** runs the queries and
inserts the key, and a **write** runs its queries then invalidates the key
(cache-aside).  Because the db connection pool is never touched on a hit,
a warm cache relieves *soft-resource* pressure — fewer Tomcat threads
block on connections — which is what shifts DCM's effective S*(N) (see
:meth:`repro.model.service_time.ConcurrencyModel.with_cache_hit_rate`).

:class:`CacheServer` is a real :class:`~repro.ntier.server.TierServer`:
every get/put/delete is an accounted interaction with CPU demand under a
nearly-linear contention law (caches scale well, they are not free), so
monitoring, conservation checks and crash semantics all apply unchanged.
:class:`CacheTier` spreads keys over the nodes with the same
consistent-hash ring the db shards use.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.ntier.contention import ContentionModel
from repro.ntier.server import TierServer
from repro.ntier.sharding import ConsistentHashRing
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.request import Request
    from repro.sim.core import Environment

#: Ground-truth contention for cache nodes: almost flat — a key/value store
#: has no lock convoys to speak of, so concurrency inflates service time
#: only mildly (no thrash term).  Scale-free, like the other tiers' laws.
CACHE_CONTENTION = ContentionModel(s0=1.0e-4, alpha=1.0e-7, beta=2.0e-9)


@dataclass(frozen=True)
class CacheSpec:
    """Configuration of the cache tier (``ScenarioSpec.cache``, schema v4).

    ``capacity`` and ``ttl`` are per node; ``ttl = 0`` disables expiry.
    ``op_demand`` is the single-threaded CPU seconds per cache operation.
    ``keys`` / ``zipf`` describe the keyed workload (shared with
    ``ShardingSpec`` when both tiers are configured — the two must agree).
    """

    servers: int = 1
    capacity: int = 4096
    ttl: float = 0.0
    op_demand: float = 5.0e-5
    keys: int = 10000
    zipf: float = 1.1

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ConfigurationError(f"cache needs >= 1 server, got {self.servers}")
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if self.ttl < 0:
            raise ConfigurationError(f"ttl must be >= 0 (0 = no expiry), got {self.ttl}")
        if self.op_demand <= 0:
            raise ConfigurationError(f"op_demand must be > 0, got {self.op_demand}")
        if self.keys < 1:
            raise ConfigurationError(f"keys must be >= 1, got {self.keys}")
        if self.zipf < 0:
            raise ConfigurationError(f"zipf exponent must be >= 0, got {self.zipf}")

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "servers": self.servers,
            "capacity": self.capacity,
            "ttl": self.ttl,
            "op_demand": self.op_demand,
            "keys": self.keys,
            "zipf": self.zipf,
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "CacheSpec":
        return cls(**obj)


class CacheServer(TierServer):
    """One cache node: an LRU store with optional TTL expiry.

    Only *presence* is stored (the simulator models load, not data): an
    entry maps key -> expiry time.  Each operation is one accounted
    interaction whose CPU demand runs under :data:`CACHE_CONTENTION`.
    """

    tier = "cache"

    def __init__(
        self,
        env: "Environment",
        name: str,
        capacity: int,
        ttl: float = 0.0,
        op_demand: float = 5.0e-5,
        contention: ContentionModel = CACHE_CONTENTION,
    ) -> None:
        super().__init__(env, name, contention)
        self.capacity = int(capacity)
        self.ttl = float(ttl)
        self.op_demand = float(op_demand)
        self._store: "OrderedDict[int, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def _process(
        self,
        request: "Request",
        started_holder: list,
        op: str = "get",
        key: int = 0,
        out: Optional[list] = None,
        **kwargs: Any,
    ) -> Generator[Event, Any, None]:
        # No admission pool: a cache node serves every operation directly
        # (concurrency pressure shows up as CPU contention, not queueing).
        started_holder[0] = self.env.now
        yield self.cpu.execute(self.op_demand)
        if op == "get":
            expiry = self._store.get(key)
            if expiry is not None and expiry < self.env.now:
                del self._store[key]
                self.expirations += 1
                expiry = None
            if expiry is None:
                self.misses += 1
            else:
                self._store.move_to_end(key)
                self.hits += 1
                if out is not None:
                    out.append(key)
        elif op == "put":
            self._store[key] = (
                self.env.now + self.ttl if self.ttl > 0 else float("inf")
            )
            self._store.move_to_end(key)
            self.insertions += 1
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1
        elif op == "delete":
            if self._store.pop(key, None) is not None:
                self.invalidations += 1
        else:
            raise ConfigurationError(f"unknown cache op {op!r}")

    @property
    def entries(self) -> int:
        """Entries currently stored (including not-yet-collected expired ones)."""
        return len(self._store)

    def hit_rate(self) -> float:
        """Lifetime hit rate of this node (0.0 before any lookup)."""
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def snapshot(self) -> dict:
        """Extend the base counters with cache statistics."""
        snap = super().snapshot()
        snap.update(
            {
                "cache_hits": float(self.hits),
                "cache_misses": float(self.misses),
                "cache_entries": float(self.entries),
                "cache_evictions": float(self.evictions),
                "cache_expirations": float(self.expirations),
            }
        )
        return snap


class CacheTier:
    """The cache nodes plus key->node placement (consistent hashing).

    Tomcat servers call the generator methods with ``yield from`` inside
    their own request flow, so cache time is part of the request's app-tier
    residence — exactly where a blocking memcached call sits.
    """

    def __init__(self, env: "Environment", spec: CacheSpec, nodes: List[CacheServer]) -> None:
        if len(nodes) != spec.servers:
            raise ConfigurationError(
                f"cache tier built with {len(nodes)} nodes, spec says {spec.servers}"
            )
        self.env = env
        self.spec = spec
        self.nodes = list(nodes)
        self._ring = ConsistentHashRing()
        for idx in range(len(self.nodes)):
            self._ring.add_node(idx)

    def node_for(self, key: int) -> CacheServer:
        """The node owning ``key``."""
        return self.nodes[self._ring.lookup(key)]

    # -- request-flow operations (generators; drive with ``yield from``) -----
    def lookup(self, request: "Request") -> Generator[Event, Any, bool]:
        """Consult the cache for ``request.key``; returns True on a hit."""
        out: list = []
        yield self.node_for(request.key).handle(
            request, op="get", key=request.key, out=out
        )
        return bool(out)

    def insert(self, request: "Request") -> Generator[Event, Any, None]:
        """Populate ``request.key`` after a miss served from the db."""
        yield self.node_for(request.key).handle(
            request, op="put", key=request.key
        )

    def invalidate(self, request: "Request") -> Generator[Event, Any, None]:
        """Drop ``request.key`` after a write (cache-aside invalidation)."""
        yield self.node_for(request.key).handle(
            request, op="delete", key=request.key
        )

    # -- statistics -----------------------------------------------------------
    def hit_rate(self) -> float:
        """Tier-wide lifetime hit rate (0.0 before any lookup)."""
        hits = sum(n.hits for n in self.nodes)
        looked = hits + sum(n.misses for n in self.nodes)
        return hits / looked if looked else 0.0

    def stats(self) -> Dict[str, float]:
        """Aggregate cache counters across the tier."""
        return {
            "hits": float(sum(n.hits for n in self.nodes)),
            "misses": float(sum(n.misses for n in self.nodes)),
            "hit_rate": self.hit_rate(),
            "entries": float(sum(n.entries for n in self.nodes)),
            "evictions": float(sum(n.evictions for n in self.nodes)),
            "expirations": float(sum(n.expirations for n in self.nodes)),
            "invalidations": float(sum(n.invalidations for n in self.nodes)),
        }
