"""n-tier system assembly and runtime scaling operations.

:class:`NTierSystem` wires client traffic → Apache tier → (app balancer) →
Tomcat tier → (db balancer) → MySQL tier, following the paper's ``#W/#A/#D``
topologies (Fig 1(c)), and exposes the runtime operations the actuators
drive: add/drain/remove servers in the app and db tiers, and resize soft
resources on live servers.

The system object is deliberately ignorant of *policies* — controllers
(:mod:`repro.control`) decide when to scale; the workload generators
(:mod:`repro.workload`) decide what to submit.  It also keeps the request
log used by the analysis layer: ``(created, response_time)`` per completed
request plus failure timestamps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import InvariantViolation, RequestShed, TopologyError
from repro.ntier.apache import ApacheServer
from repro.ntier.balancer import Balancer
from repro.ntier.contention import (
    APACHE_CONTENTION,
    MYSQL_CONTENTION,
    TOMCAT_CONTENTION,
    ContentionModel,
)
from repro.ntier.mysql import MySQLServer
from repro.ntier.request import Request
from repro.ntier.softconfig import HardwareConfig, SoftResourceConfig
from repro.ntier.tomcat import TomcatServer
from repro.sim.events import Event
from repro.sim.rng import RandomStreams
from repro.workload.servlets import ServletCatalog, browse_only_catalog

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

TIERS = ("web", "app", "db")


class NTierSystem:
    """A running n-tier deployment with runtime scaling hooks.

    Parameters
    ----------
    env:
        Simulation environment.
    streams:
        Named random streams (``workload.mix``, ``balancer.app`` ...).
    hardware:
        Initial ``#W/#A/#D`` server counts.
    soft:
        Initial soft-resource allocation applied to every server.
    catalog:
        Servlet catalogue; defaults to the calibrated browse-only mix.
    balancer_policy / imbalance:
        Passed to the app- and db-tier balancers; ``imbalance`` produces the
        sub-linear multi-server scaling behind the paper's γ.
    """

    def __init__(
        self,
        env: "Environment",
        streams: Optional[RandomStreams] = None,
        hardware: HardwareConfig = HardwareConfig(1, 1, 1),
        soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
        catalog: Optional[ServletCatalog] = None,
        balancer_policy: str = "least_conn",
        imbalance: float = 0.05,
        apache_contention: ContentionModel = APACHE_CONTENTION,
        tomcat_contention: ContentionModel = TOMCAT_CONTENTION,
        mysql_contention: ContentionModel = MYSQL_CONTENTION,
    ) -> None:
        self.env = env
        self.streams = streams or RandomStreams(0)
        self.soft = soft
        self.catalog = catalog or browse_only_catalog()
        self._contention = {
            "web": apache_contention,
            "app": tomcat_contention,
            "db": mysql_contention,
        }

        self.web_balancer = Balancer(
            "lb-web", policy="round_robin", rng=self.streams.stream("balancer.web")
        )
        self.app_balancer = Balancer(
            "lb-app",
            policy=balancer_policy,
            imbalance=imbalance,
            rng=self.streams.stream("balancer.app"),
        )
        self.db_balancer = Balancer(
            "lb-db",
            policy=balancer_policy,
            imbalance=imbalance,
            rng=self.streams.stream("balancer.db"),
        )

        self._counters = {"web": 0, "app": 0, "db": 0}
        # Request accounting for the analysis layer.
        self.request_log: List[Tuple[float, float]] = []
        self.failure_log: List[float] = []
        self.shed_log: List[float] = []
        self.submitted = 0
        self._inflight = 0
        # Optional capture of every Request object, enabled by the audit's
        # conservation-under-failure checks (off by default: it pins memory).
        self.audit_requests: Optional[List[Request]] = None
        # Servers deregistered at runtime (crash or scale-in) — kept so
        # conservation audits can still sum their counters.
        self.removed_servers: List = []

        for _ in range(hardware.db):
            self.add_mysql()
        for _ in range(hardware.app):
            self.add_tomcat()
        for _ in range(hardware.web):
            self.add_apache()

    # -- construction helpers -----------------------------------------------------
    def _next_name(self, tier: str) -> str:
        self._counters[tier] += 1
        prefix = {"web": "apache", "app": "tomcat", "db": "mysql"}[tier]
        return f"{prefix}-{self._counters[tier]}"

    def add_apache(self, threads: Optional[int] = None) -> ApacheServer:
        """Create and register a new Apache server (web tier)."""
        server = ApacheServer(
            self.env,
            self._next_name("web"),
            app_balancer=self.app_balancer,
            threads=threads if threads is not None else self.soft.apache_threads,
            contention=self._contention["web"],
        )
        self.web_balancer.add(server)
        return server

    def add_tomcat(
        self,
        threads: Optional[int] = None,
        db_connections: Optional[int] = None,
    ) -> TomcatServer:
        """Create and register a new Tomcat server (app tier).

        Defaults to the system's current soft configuration — exactly the
        paper's hardware-only failure mode, where a new Tomcat arrives with
        the default connection pool and doubles MySQL's concurrency cap.
        """
        server = TomcatServer(
            self.env,
            self._next_name("app"),
            db_balancer=self.db_balancer,
            threads=threads if threads is not None else self.soft.tomcat_threads,
            db_connections=(
                db_connections if db_connections is not None else self.soft.db_connections
            ),
            contention=self._contention["app"],
        )
        self.app_balancer.add(server)
        return server

    def add_mysql(self, max_connections: int = 400) -> MySQLServer:
        """Create and register a new MySQL server (db tier)."""
        server = MySQLServer(
            self.env,
            self._next_name("db"),
            max_connections=max_connections,
            contention=self._contention["db"],
        )
        self.db_balancer.add(server)
        return server

    # -- tier access -----------------------------------------------------------------
    def balancer(self, tier: str) -> Balancer:
        """The balancer in front of ``tier``."""
        try:
            return {"web": self.web_balancer, "app": self.app_balancer, "db": self.db_balancer}[tier]
        except KeyError:
            raise TopologyError(f"unknown tier {tier!r}; pick from {TIERS}") from None

    def tier_servers(self, tier: str) -> list:
        """All registered servers of ``tier`` (including draining ones)."""
        return list(self.balancer(tier).backends)

    def active_servers(self, tier: str) -> list:
        """Servers of ``tier`` currently accepting work."""
        return self.balancer(tier).eligible()

    def all_servers(self) -> list:
        """Every registered server across all tiers."""
        return [s for tier in TIERS for s in self.tier_servers(tier)]

    @property
    def hardware(self) -> HardwareConfig:
        """Current accepting-server counts as a ``#W/#A/#D`` config."""
        return HardwareConfig(
            max(1, len(self.active_servers("web"))),
            max(1, len(self.active_servers("app"))),
            max(1, len(self.active_servers("db"))),
        )

    def visit_ratios(self) -> Dict[str, float]:
        """The paper's V_m per tier for this system's servlet mix — what the
        model estimator needs to convert HTTP throughput to per-tier visits."""
        return self.catalog.visit_ratios()

    # -- scaling operations (used by actuators) -----------------------------------------
    def drain(self, server) -> Event:
        """Begin draining ``server``; returns the drained event."""
        server.begin_drain()
        return server.drained_event()

    def remove(self, server) -> None:
        """Deregister a (drained or crashed) server from its tier balancer."""
        self.balancer(server.tier).remove(server)
        self.removed_servers.append(server)

    def apply_soft_config(self, soft: SoftResourceConfig) -> None:
        """Resize every live server's pools to ``soft`` (APP-agent bulk op)."""
        self.soft = soft
        for server in self.tier_servers("web"):
            server.threads.resize(soft.apache_threads)
        for server in self.tier_servers("app"):
            server.threads.resize(soft.tomcat_threads)
            server.db_pool.resize(soft.db_connections)

    # -- request entry point ----------------------------------------------------------
    def submit(self, servlet_name: Optional[str] = None) -> Tuple[Request, Event]:
        """Create one HTTP request and drive it through the system.

        Returns the request object and an event that fires when the request
        completes (successfully or not — inspect ``request.failed``).
        """
        rng = self.streams.stream("workload.demand")
        if servlet_name is None:
            servlet = self.catalog.sample(self.streams.stream("workload.mix"))
        else:
            servlet = self.catalog[servlet_name]
        demand = servlet.sample_demand(rng, self.catalog.demand_distribution)
        request = Request(servlet=servlet, created=self.env.now, demand=demand)
        self.submitted += 1
        if self.audit_requests is not None:
            self.audit_requests.append(request)
        done = self.env.process(self._drive(request))
        return request, done

    def _drive(self, request: Request):
        self._inflight += 1
        try:
            try:
                yield from self.web_balancer.dispatch(self.env, request)
            except RequestShed as err:  # admission control refused it: accounted
                request.failed = True
                request.failure_reason = f"{type(err).__name__}: {err}"
                self.shed_log.append(self.env.now)
                return request
            except InvariantViolation:
                # Sanitizer findings must surface, never be filed away as
                # "request failed" — a swallowed violation turns a broken
                # conservation ledger into a plausible-looking run.
                raise
            except Exception as err:  # failed request: record, do not crash the client
                request.failed = True
                request.failure_reason = f"{type(err).__name__}: {err}"
                self.failure_log.append(self.env.now)
                return request
            request.completed = self.env.now
            self.request_log.append(
                (request.created, request.completed - request.created)
            )
            return request
        finally:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Client requests currently inside the system (submitted, unresolved)."""
        return self._inflight

    # -- quick stats ---------------------------------------------------------------------
    def completed_count(self) -> int:
        """Number of successfully completed requests so far."""
        return len(self.request_log)

    def db_concurrency(self) -> int:
        """Total queries in service across the DB tier (paper's key metric)."""
        return sum(s.active_queries for s in self.tier_servers("db"))

    def max_db_concurrency(self) -> int:
        """Upper bound on DB concurrency from the live Tomcat conn pools."""
        return sum(s.db_pool.size for s in self.active_servers("app"))
