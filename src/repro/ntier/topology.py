"""n-tier system assembly and runtime scaling operations.

:class:`NTierSystem` wires client traffic → Apache tier → (app balancer) →
Tomcat tier → (db balancer) → MySQL tier, following the paper's ``#W/#A/#D``
topologies (Fig 1(c)), and exposes the runtime operations the actuators
drive: add/drain/remove servers in the app and db tiers, and resize soft
resources on live servers.

The system object is deliberately ignorant of *policies* — controllers
(:mod:`repro.control`) decide when to scale; the workload generators
(:mod:`repro.workload`) decide what to submit.  It also keeps the request
log used by the analysis layer: ``(created, response_time)`` per completed
request plus failure timestamps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    RequestShed,
    TopologyError,
)
from repro.ntier.apache import ApacheServer
from repro.ntier.balancer import Balancer
from repro.ntier.cache import CacheServer, CacheSpec, CacheTier
from repro.ntier.contention import (
    APACHE_CONTENTION,
    MYSQL_CONTENTION,
    TOMCAT_CONTENTION,
    ContentionModel,
)
from repro.ntier.mysql import MySQLServer
from repro.ntier.request import Request
from repro.ntier.sharding import ShardingSpec, ShardRouter
from repro.ntier.softconfig import HardwareConfig, SoftResourceConfig
from repro.ntier.tomcat import TomcatServer
from repro.sim.events import Event
from repro.sim.rng import RandomStreams
from repro.workload.keys import ZipfKeySampler
from repro.workload.servlets import ServletCatalog, browse_only_catalog

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

TIERS = ("web", "app", "db")


class NTierSystem:
    """A running n-tier deployment with runtime scaling hooks.

    Parameters
    ----------
    env:
        Simulation environment.
    streams:
        Named random streams (``workload.mix``, ``balancer.app`` ...).
    hardware:
        Initial ``#W/#A/#D`` server counts.
    soft:
        Initial soft-resource allocation applied to every server.
    catalog:
        Servlet catalogue; defaults to the calibrated browse-only mix.
    balancer_policy / imbalance:
        Passed to the app- and db-tier balancers; ``imbalance`` produces the
        sub-linear multi-server scaling behind the paper's γ.
    cache / sharding:
        Optional stateful-tier configurations.  ``cache`` inserts a
        cache-aside tier between Tomcat and MySQL; ``sharding`` replaces the
        multi-master db balancer with a :class:`ShardRouter` (the db tier
        then holds ``shards * (1 + replicas)`` servers and ``hardware.db``
        is superseded).  Either one makes the workload *keyed* (a seeded
        Zipf stream assigns ``request.key``).  Both ``None`` reproduces the
        historical construction sequence bit-for-bit.
    """

    def __init__(
        self,
        env: "Environment",
        streams: Optional[RandomStreams] = None,
        hardware: HardwareConfig = HardwareConfig(1, 1, 1),
        soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
        catalog: Optional[ServletCatalog] = None,
        balancer_policy: str = "least_conn",
        imbalance: float = 0.05,
        apache_contention: ContentionModel = APACHE_CONTENTION,
        tomcat_contention: ContentionModel = TOMCAT_CONTENTION,
        mysql_contention: ContentionModel = MYSQL_CONTENTION,
        cache: Optional[CacheSpec] = None,
        sharding: Optional[ShardingSpec] = None,
    ) -> None:
        for tier, count in (
            ("web", hardware.web), ("app", hardware.app), ("db", hardware.db)
        ):
            # HardwareConfig itself allows zero (the live `hardware` property
            # reports outages truthfully); an *initial* topology cannot.
            if count < 1:
                raise ConfigurationError(
                    f"initial {tier} tier needs >= 1 server, got {count}"
                )
        self.env = env
        self.streams = streams or RandomStreams(0)
        self.soft = soft
        self.catalog = catalog or browse_only_catalog()
        self.cache_spec = cache
        self.sharding = sharding
        self._contention = {
            "web": apache_contention,
            "app": tomcat_contention,
            "db": mysql_contention,
        }

        self.web_balancer = Balancer(
            "lb-web", policy="round_robin", rng=self.streams.stream("balancer.web")
        )
        self.app_balancer = Balancer(
            "lb-app",
            policy=balancer_policy,
            imbalance=imbalance,
            rng=self.streams.stream("balancer.app"),
        )
        if sharding is None:
            self.db_balancer: Balancer = Balancer(
                "lb-db",
                policy=balancer_policy,
                imbalance=imbalance,
                rng=self.streams.stream("balancer.db"),
            )
        else:
            self.db_balancer = ShardRouter(
                "lb-db",
                sharding,
                policy=balancer_policy,
                imbalance=imbalance,
                rng=self.streams.stream("balancer.db"),
                shard_stream=lambda sid: self.streams.stream(
                    f"balancer.db.shard-{sid}"
                ),
            )

        # Keyed workloads: either stateful tier implies a key per request,
        # drawn from its own named stream so keyless digests never move.
        self._key_sampler: Optional[ZipfKeySampler] = None
        if cache is not None or sharding is not None:
            kspec = cache if cache is not None else sharding
            if (
                cache is not None
                and sharding is not None
                and (cache.keys, cache.zipf) != (sharding.keys, sharding.zipf)
            ):
                raise ConfigurationError(
                    "cache and sharding describe different keyed workloads: "
                    f"keys/zipf {cache.keys}/{cache.zipf} vs "
                    f"{sharding.keys}/{sharding.zipf}"
                )
            self._key_sampler = ZipfKeySampler(
                kspec.keys, kspec.zipf, self.streams.stream("workload.keys")
            )

        self._counters = {"web": 0, "app": 0, "db": 0, "cache": 0}
        # Request accounting for the analysis layer.
        self.request_log: List[Tuple[float, float]] = []
        self.failure_log: List[float] = []
        self.shed_log: List[float] = []
        self.submitted = 0
        self._inflight = 0
        # Optional capture of every Request object, enabled by the audit's
        # conservation-under-failure checks (off by default: it pins memory).
        self.audit_requests: Optional[List[Request]] = None
        # Servers deregistered at runtime (crash or scale-in) — kept so
        # conservation audits can still sum their counters.
        self.removed_servers: List = []

        # Cache tier first: Tomcats hold a reference to it at construction.
        self.cache: Optional[CacheTier] = None
        if cache is not None:
            nodes = [
                CacheServer(
                    env,
                    self._next_name("cache"),
                    capacity=cache.capacity,
                    ttl=cache.ttl,
                    op_demand=cache.op_demand,
                )
                for _ in range(cache.servers)
            ]
            self.cache = CacheTier(env, cache, nodes)

        if sharding is None:
            for _ in range(hardware.db):
                self.add_mysql()
        else:
            # hardware.db is superseded: the sharded tier's size is fixed by
            # its own geometry, one primary plus N replicas per shard.
            for sid in range(sharding.shards):
                self.add_mysql(role="primary", shard=sid)
                for _ in range(sharding.replicas):
                    self.add_mysql(role="replica", shard=sid)
        for _ in range(hardware.app):
            self.add_tomcat()
        for _ in range(hardware.web):
            self.add_apache()

    # -- construction helpers -----------------------------------------------------
    def _next_name(self, tier: str) -> str:
        self._counters[tier] += 1
        prefix = {"web": "apache", "app": "tomcat", "db": "mysql", "cache": "cache"}[tier]
        return f"{prefix}-{self._counters[tier]}"

    def add_apache(self, threads: Optional[int] = None) -> ApacheServer:
        """Create and register a new Apache server (web tier)."""
        server = ApacheServer(
            self.env,
            self._next_name("web"),
            app_balancer=self.app_balancer,
            threads=threads if threads is not None else self.soft.apache_threads,
            contention=self._contention["web"],
        )
        self.web_balancer.add(server)
        return server

    def add_tomcat(
        self,
        threads: Optional[int] = None,
        db_connections: Optional[int] = None,
    ) -> TomcatServer:
        """Create and register a new Tomcat server (app tier).

        Defaults to the system's current soft configuration — exactly the
        paper's hardware-only failure mode, where a new Tomcat arrives with
        the default connection pool and doubles MySQL's concurrency cap.
        """
        server = TomcatServer(
            self.env,
            self._next_name("app"),
            db_balancer=self.db_balancer,
            threads=threads if threads is not None else self.soft.tomcat_threads,
            db_connections=(
                db_connections if db_connections is not None else self.soft.db_connections
            ),
            contention=self._contention["app"],
            cache=self.cache,
        )
        self.app_balancer.add(server)
        return server

    def add_mysql(
        self,
        max_connections: Optional[int] = None,
        role: str = "standalone",
        shard: Optional[int] = None,
    ) -> MySQLServer:
        """Create and register a new MySQL server (db tier).

        Defaults the connection cap to the system's current soft config (so
        resized caps carry over to scale-out servers).  ``role`` / ``shard``
        matter only behind a :class:`ShardRouter`; a server joining a
        sharded tier without them becomes a replica of the hottest shard.
        """
        server = MySQLServer(
            self.env,
            self._next_name("db"),
            max_connections=(
                max_connections
                if max_connections is not None
                else self.soft.max_connections
            ),
            contention=self._contention["db"],
            role=role,
            shard=shard,
        )
        self.db_balancer.add(server)
        return server

    # -- tier access -----------------------------------------------------------------
    def balancer(self, tier: str) -> Balancer:
        """The balancer in front of ``tier``."""
        try:
            return {"web": self.web_balancer, "app": self.app_balancer, "db": self.db_balancer}[tier]
        except KeyError:
            raise TopologyError(f"unknown tier {tier!r}; pick from {TIERS}") from None

    def tier_servers(self, tier: str) -> list:
        """All registered servers of ``tier`` (including draining ones)."""
        return list(self.balancer(tier).backends)

    def active_servers(self, tier: str) -> list:
        """Servers of ``tier`` currently accepting work."""
        return self.balancer(tier).eligible()

    def all_servers(self) -> list:
        """Every registered server across all tiers (cache nodes included)."""
        servers = [s for tier in TIERS for s in self.tier_servers(tier)]
        if self.cache is not None:
            servers.extend(self.cache.nodes)
        return servers

    @property
    def hardware(self) -> HardwareConfig:
        """Current accepting-server counts as a ``#W/#A/#D`` config.

        Counts are reported *truthfully*: a full-tier outage shows as 0, not
        a clamped 1 — controllers dividing load by a phantom server computed
        per-server demand with the wrong denominator (and the allocation
        planner now rejects zero-server topologies explicitly).
        """
        return HardwareConfig(
            len(self.active_servers("web")),
            len(self.active_servers("app")),
            len(self.active_servers("db")),
        )

    def visit_ratios(self) -> Dict[str, float]:
        """The paper's V_m per tier for this system's servlet mix — what the
        model estimator needs to convert HTTP throughput to per-tier visits.

        With a cache tier, db visits shrink to the *measured* miss fraction:
        ``V_db = (1 - hit_rate) * V_db_catalog`` (0 hits recorded means the
        catalogue ratio, so a cold system matches the cacheless one)."""
        ratios = self.catalog.visit_ratios()
        if self.cache is not None:
            ratios["db"] *= max(0.0, 1.0 - self.cache.hit_rate())
        return ratios

    # -- scaling operations (used by actuators) -----------------------------------------
    def drain(self, server) -> Event:
        """Begin draining ``server``; returns the drained event."""
        server.begin_drain()
        return server.drained_event()

    def remove(self, server) -> None:
        """Deregister a (drained or crashed) server from its tier balancer."""
        self.balancer(server.tier).remove(server)
        self.removed_servers.append(server)

    def apply_soft_config(self, soft: SoftResourceConfig) -> None:
        """Resize every live server's pools to ``soft`` (APP-agent bulk op).

        The db tier is resized too: leaving ``max_connections`` at its
        construction-time value silently capped any db-side allocation
        larger than the cap — the soft config now carries it end to end.
        """
        self.soft = soft
        for server in self.tier_servers("web"):
            server.threads.resize(soft.apache_threads)
        for server in self.tier_servers("app"):
            server.threads.resize(soft.tomcat_threads)
            server.db_pool.resize(soft.db_connections)
        for server in self.tier_servers("db"):
            server.set_max_connections(soft.max_connections)

    # -- request entry point ----------------------------------------------------------
    def submit(self, servlet_name: Optional[str] = None) -> Tuple[Request, Event]:
        """Create one HTTP request and drive it through the system.

        Returns the request object and an event that fires when the request
        completes (successfully or not — inspect ``request.failed``).
        """
        rng = self.streams.stream("workload.demand")
        if servlet_name is None:
            servlet = self.catalog.sample(self.streams.stream("workload.mix"))
        else:
            servlet = self.catalog[servlet_name]
        demand = servlet.sample_demand(rng, self.catalog.demand_distribution)
        if self._key_sampler is not None:
            key: Optional[int] = self._key_sampler.sample()
            is_write = servlet.category == "write"
        else:
            key, is_write = None, False
        request = Request(
            servlet=servlet,
            created=self.env.now,
            demand=demand,
            key=key,
            is_write=is_write,
        )
        self.submitted += 1
        if self.audit_requests is not None:
            self.audit_requests.append(request)
        done = self.env.process(self._drive(request))
        return request, done

    def _drive(self, request: Request):
        self._inflight += 1
        try:
            try:
                yield from self.web_balancer.dispatch(self.env, request)
            except RequestShed as err:  # admission control refused it: accounted
                request.failed = True
                request.failure_reason = f"{type(err).__name__}: {err}"
                self.shed_log.append(self.env.now)
                return request
            except InvariantViolation:
                # Sanitizer findings must surface, never be filed away as
                # "request failed" — a swallowed violation turns a broken
                # conservation ledger into a plausible-looking run.
                raise
            except Exception as err:  # failed request: record, do not crash the client
                request.failed = True
                request.failure_reason = f"{type(err).__name__}: {err}"
                self.failure_log.append(self.env.now)
                return request
            request.completed = self.env.now
            self.request_log.append(
                (request.created, request.completed - request.created)
            )
            return request
        finally:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Client requests currently inside the system (submitted, unresolved)."""
        return self._inflight

    # -- quick stats ---------------------------------------------------------------------
    def completed_count(self) -> int:
        """Number of successfully completed requests so far."""
        return len(self.request_log)

    def db_concurrency(self) -> int:
        """Total queries in service across the DB tier (paper's key metric)."""
        return sum(s.active_queries for s in self.tier_servers("db"))

    def max_db_concurrency(self) -> int:
        """Upper bound on DB concurrency from the live Tomcat conn pools."""
        return sum(s.db_pool.size for s in self.active_servers("app"))
