"""Physical hosts: the capacity pool VMs are placed on.

Mirrors the paper's ESXi cluster (Dell R430, 2× hexa-core Xeon E5-2603 v3,
16 GB — Fig 1(b)).  Hosts only do capacity accounting; CPU *performance*
lives in the servers' contention processors, which is faithful to the
paper's setup where each VM gets a dedicated 1.6 GHz share.
"""

from __future__ import annotations

from typing import List

from repro.errors import CapacityError
from repro.cluster.vm import VirtualMachine


class PhysicalHost:
    """One hypervisor host with finite vCPU and RAM capacity."""

    def __init__(self, name: str, vcpus: int = 12, ram_gb: float = 16.0) -> None:
        self.name = name
        self.vcpus = int(vcpus)
        self.ram_gb = float(ram_gb)
        self._placed: List[VirtualMachine] = []

    def __repr__(self) -> str:
        return (
            f"<Host {self.name} cpu {self.vcpus_used}/{self.vcpus}"
            f" ram {self.ram_used:.0f}/{self.ram_gb:.0f}GB>"
        )

    # -- capacity accounting ------------------------------------------------------
    @property
    def vms(self) -> List[VirtualMachine]:
        """VMs currently placed on this host."""
        return list(self._placed)

    @property
    def vcpus_used(self) -> int:
        """vCPUs consumed by placed VMs."""
        return sum(vm.profile.vcpus for vm in self._placed)

    @property
    def ram_used(self) -> float:
        """RAM (GB) consumed by placed VMs."""
        return sum(vm.profile.ram_gb for vm in self._placed)

    def fits(self, vm: VirtualMachine) -> bool:
        """Whether ``vm`` fits in the remaining capacity."""
        return (
            self.vcpus_used + vm.profile.vcpus <= self.vcpus
            and self.ram_used + vm.profile.ram_gb <= self.ram_gb
        )

    # -- placement -----------------------------------------------------------------
    def place(self, vm: VirtualMachine) -> None:
        """Reserve capacity for ``vm`` on this host."""
        if not self.fits(vm):
            raise CapacityError(f"{self.name}: no capacity for {vm.name}")
        self._placed.append(vm)
        vm.host = self

    def unplace(self, vm: VirtualMachine) -> None:
        """Release ``vm``'s capacity."""
        try:
            self._placed.remove(vm)
        except ValueError:
            raise CapacityError(f"{vm.name} is not placed on {self.name}") from None
        vm.host = None
