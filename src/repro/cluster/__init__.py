"""Cloud substrate: hosts, VM lifecycle, hypervisor API, billing.

Replaces the paper's VMware ESXi cluster with a simulated equivalent that
preserves what the controllers interact with: a provision/terminate API, a
15-second preparation period before new VMs serve traffic, finite host
capacity, and per-VM-second billing for resource-efficiency comparisons.
"""

from repro.cluster.billing import BillingMeter
from repro.cluster.host import PhysicalHost
from repro.cluster.hypervisor import DEFAULT_PREPARATION_PERIOD, Hypervisor
from repro.cluster.vm import SMALL, VirtualMachine, VMProfile, VMState

__all__ = [
    "BillingMeter",
    "DEFAULT_PREPARATION_PERIOD",
    "Hypervisor",
    "PhysicalHost",
    "SMALL",
    "VMProfile",
    "VMState",
    "VirtualMachine",
]
