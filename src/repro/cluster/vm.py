"""Virtual machine lifecycle.

The paper's VM-agent "starts new VMs or removes idle ones" through the
hypervisor API, with a 15-second *preparation period* before a new VM enters
service mode (Section IV-A).  We model the full lifecycle so controllers
experience the same latency and accounting a real cloud imposes:

    PROVISIONING --(placement)--> BOOTING --(prep period)--> RUNNING
    RUNNING --> DRAINING --> TERMINATED        (graceful scale-in)
    RUNNING --> TERMINATED                     (forced)
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ControlError

_vm_ids = itertools.count(1)


class VMState(enum.Enum):
    """Lifecycle states of a virtual machine."""

    PROVISIONING = "provisioning"
    BOOTING = "booting"
    RUNNING = "running"
    DRAINING = "draining"
    TERMINATED = "terminated"


#: Legal state transitions.
_TRANSITIONS = {
    VMState.PROVISIONING: {VMState.BOOTING, VMState.TERMINATED},
    VMState.BOOTING: {VMState.RUNNING, VMState.TERMINATED},
    VMState.RUNNING: {VMState.DRAINING, VMState.TERMINATED},
    VMState.DRAINING: {VMState.TERMINATED, VMState.RUNNING},
    VMState.TERMINATED: set(),
}


@dataclass(frozen=True)
class VMProfile:
    """A VM flavour (the paper's "Small" profile: 1 vCPU, 2 GB)."""

    name: str = "small"
    vcpus: int = 1
    ram_gb: float = 2.0
    disk_gb: float = 20.0


#: The paper's experimental VM flavour (Fig 1(b)).
SMALL = VMProfile()


class VirtualMachine:
    """One VM instance: placement unit, billing unit, server host."""

    def __init__(self, name: str, profile: VMProfile = SMALL) -> None:
        self.vm_id = next(_vm_ids)
        self.name = name
        self.profile = profile
        self.state = VMState.PROVISIONING
        self.host: Optional[object] = None  # PhysicalHost, set by the hypervisor
        self.server: Optional[object] = None  # TierServer payload
        # Lifecycle timestamps (simulated seconds), filled by the hypervisor.
        self.provisioned_at: Optional[float] = None
        self.running_at: Optional[float] = None
        self.terminated_at: Optional[float] = None

    def __repr__(self) -> str:
        return f"<VM {self.name} {self.state.value}>"

    @property
    def is_running(self) -> bool:
        """``True`` while the VM can serve traffic (RUNNING or DRAINING)."""
        return self.state in (VMState.RUNNING, VMState.DRAINING)

    def transition(self, new_state: VMState) -> None:
        """Move to ``new_state``, enforcing lifecycle legality."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ControlError(
                f"{self!r}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state
