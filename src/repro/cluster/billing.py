"""VM-time accounting — the resource-efficiency side of the evaluation.

The paper's abstract claims DCM achieves "higher resource efficiency" than
hardware-only scaling; the billing meter quantifies that as accumulated
VM-seconds (and dollar cost at an hourly rate) so the Fig 5 benchmark can
report efficiency alongside stability.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.check import config as _checks
from repro.cluster.vm import VirtualMachine
from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class BillingMeter:
    """Accumulates per-VM running time (from RUNNING to TERMINATED)."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._started: Dict[int, Tuple[VirtualMachine, float]] = {}
        self._closed: List[Tuple[VirtualMachine, float, float]] = []

    # -- lifecycle hooks (called by the hypervisor) ----------------------------------
    def vm_started(self, vm: VirtualMachine) -> None:
        """Begin metering ``vm`` (it just entered RUNNING)."""
        if _checks.active("lifecycle"):
            if vm.vm_id in self._started:
                raise InvariantViolation(
                    "cluster.billing", "vm-seconds-integral", self.env.now,
                    f"{vm.name} metered twice without an intervening stop",
                )
            if not vm.is_running:
                raise InvariantViolation(
                    "cluster.billing", "vm-lifecycle", self.env.now,
                    f"metering started while {vm.name} is {vm.state.value}",
                )
        self._started[vm.vm_id] = (vm, self.env.now)

    def vm_stopped(self, vm: VirtualMachine) -> None:
        """Stop metering ``vm`` (it terminated).  Unknown VMs are ignored —
        a VM killed before ever running was never billed."""
        entry = self._started.pop(vm.vm_id, None)
        if entry is not None:
            if _checks.active("lifecycle") and self.env.now < entry[1]:
                raise InvariantViolation(
                    "cluster.billing", "vm-seconds-integral", self.env.now,
                    f"{vm.name} interval would close before it opened "
                    f"(start={entry[1]})",
                )
            self._closed.append((vm, entry[1], self.env.now))

    # -- queries -------------------------------------------------------------------
    def vm_seconds(self, until: Optional[float] = None) -> float:
        """Total VM-seconds accumulated (open intervals counted to ``until``,
        default the current simulation time)."""
        now = self.env.now if until is None else until
        total = sum(end - start for _vm, start, end in self._closed)
        total += sum(max(0.0, now - start) for _vm, start in self._started.values())
        return total

    def cost(self, rate_per_hour: float, until: Optional[float] = None) -> float:
        """Dollar cost at ``rate_per_hour`` per VM."""
        return self.vm_seconds(until) / 3600.0 * rate_per_hour

    def intervals(self) -> List[Tuple[str, float, Optional[float]]]:
        """``(vm name, start, end)`` for every billed interval (open ones
        have ``end = None``)."""
        rows: List[Tuple[str, float, Optional[float]]] = [
            (vm.name, start, end) for vm, start, end in self._closed
        ]
        rows.extend((vm.name, start, None) for vm, start in self._started.values())
        return sorted(rows, key=lambda r: r[1])
