"""The hypervisor API used by the VM-agent.

"In a cloud computing environment, starting or turning off VMs is easy by
just remotely calling the corresponding APIs of the underlying hypervisor"
(Section IV-A) — this is that API.  :meth:`Hypervisor.provision` places a VM
on a host (first fit), walks it through PROVISIONING → BOOTING → RUNNING
with the paper's 15-second preparation period, and returns an event that
fires when the VM is in service mode.  :meth:`Hypervisor.terminate` releases
it and closes its billing interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.check import config as _checks
from repro.check.sanitizer import audit_billing, audit_vm
from repro.cluster.billing import BillingMeter
from repro.cluster.host import PhysicalHost
from repro.cluster.vm import SMALL, VirtualMachine, VMProfile, VMState
from repro.errors import CapacityError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: The paper's VM preparation period (seconds) before service mode.
DEFAULT_PREPARATION_PERIOD = 15.0


class Hypervisor:
    """Manages hosts, VM placement, boot sequencing, and billing.

    Parameters
    ----------
    env:
        Simulation environment.
    hosts:
        The physical capacity pool.  Defaults to four paper-profile hosts
        (plenty for the paper's 1–3 servers per tier).
    preparation_period:
        Seconds between a provision call and the VM entering service.
    """

    def __init__(
        self,
        env: "Environment",
        hosts: Optional[List[PhysicalHost]] = None,
        preparation_period: float = DEFAULT_PREPARATION_PERIOD,
    ) -> None:
        self.env = env
        self.hosts = hosts if hosts is not None else [
            PhysicalHost(f"esxi-{i}") for i in range(1, 5)
        ]
        self.preparation_period = preparation_period
        self.billing = BillingMeter(env)
        self._vms: List[VirtualMachine] = []

    # -- inventory ---------------------------------------------------------------
    @property
    def vms(self) -> List[VirtualMachine]:
        """All VMs ever provisioned (inspect ``state`` to filter)."""
        return list(self._vms)

    def running_vms(self) -> List[VirtualMachine]:
        """VMs currently in RUNNING or DRAINING state."""
        return [vm for vm in self._vms if vm.is_running]

    # -- provisioning -------------------------------------------------------------
    def provision(
        self,
        name: str,
        profile: VMProfile = SMALL,
        preparation_period: Optional[float] = None,
    ) -> tuple[VirtualMachine, Event]:
        """Start a new VM; returns ``(vm, ready_event)``.

        ``ready_event`` fires (with the VM) once the preparation period has
        elapsed and the VM is RUNNING.  Raises :class:`CapacityError` when no
        host fits the profile.
        """
        vm = VirtualMachine(name, profile)
        host = next((h for h in self.hosts if h.fits(vm)), None)
        if host is None:
            raise CapacityError(f"no host can fit {name} ({profile.name})")
        host.place(vm)
        vm.provisioned_at = self.env.now
        self._vms.append(vm)
        ready = Event(self.env)
        self.env.process(self._boot(vm, ready, preparation_period))
        return vm, ready

    def _boot(self, vm: VirtualMachine, ready: Event, prep: Optional[float]):
        vm.transition(VMState.BOOTING)
        yield self.env.timeout(self.preparation_period if prep is None else prep)
        if vm.state is VMState.TERMINATED:  # killed mid-boot
            ready.fail(CapacityError(f"{vm.name} terminated during boot"))
            return
        vm.transition(VMState.RUNNING)
        vm.running_at = self.env.now
        self.billing.vm_started(vm)
        ready.succeed(vm)

    # -- teardown ------------------------------------------------------------------
    def terminate(self, vm: VirtualMachine) -> None:
        """Stop ``vm`` immediately, releasing capacity and closing billing."""
        if vm.state is VMState.TERMINATED:
            return
        vm.transition(VMState.TERMINATED)
        vm.terminated_at = self.env.now
        self.billing.vm_stopped(vm)
        if vm.host is not None:
            vm.host.unplace(vm)
        if _checks.active("lifecycle"):
            audit_vm(vm, self.env.now)
            audit_billing(self)

    # -- capacity queries ------------------------------------------------------------
    def total_capacity(self) -> dict:
        """Aggregate vCPU/RAM capacity and usage across hosts."""
        return {
            "vcpus": sum(h.vcpus for h in self.hosts),
            "vcpus_used": sum(h.vcpus_used for h in self.hosts),
            "ram_gb": sum(h.ram_gb for h in self.hosts),
            "ram_used": sum(h.ram_used for h in self.hosts),
        }
