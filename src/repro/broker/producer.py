"""Producer facade for the mini broker."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.broker.broker import KafkaBroker


class Producer:
    """Publishes records to topics, keyed for per-source ordering.

    A thin veneer over :meth:`KafkaBroker.produce` that exists so agents are
    written against the same producer/consumer split a real deployment has.
    """

    def __init__(self, broker: KafkaBroker, client_id: str = "producer") -> None:
        self.broker = broker
        self.client_id = client_id
        self.records_sent = 0

    def send(self, topic: str, value: Any, key: Optional[str] = None) -> Tuple[int, int]:
        """Append ``value`` to ``topic``; returns ``(partition, offset)``."""
        result = self.broker.produce(topic, value, key=key)
        self.records_sent += 1
        return result
