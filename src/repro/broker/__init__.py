"""Mini Kafka: the metric pipeline between monitor agents and controller.

Topics/partitions with offset-addressed append-only logs, key-hash
partitioning, committed consumer-group offsets, and blocking polls — enough
of Kafka's contract to decouple 1 Hz metric producers from the controller's
15-second consumption cadence, as the paper's architecture requires.
"""

from repro.broker.broker import KafkaBroker, Topic
from repro.broker.consumer import Consumer
from repro.broker.log import PartitionLog
from repro.broker.producer import Producer
from repro.broker.records import MetricRecord

__all__ = ["Consumer", "KafkaBroker", "MetricRecord", "PartitionLog", "Producer", "Topic"]
