"""Record types flowing through the metric pipeline.

Monitoring agents publish one :class:`MetricRecord` per server per sampling
interval (the paper: "each monitoring agent continuously sends the collected
data back to a storage server (Kafka) at every one second").  Records carry
both system-level metrics (CPU utilization) and application-level metrics
(throughput, response time, active-thread concurrency) exactly as Section IV
lists them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class MetricRecord:
    """One monitoring sample for one server.

    Attributes
    ----------
    timestamp:
        Simulation time at the *end* of the sampled window.
    source:
        Server name (``tomcat-2``), which doubles as the partition key so a
        server's samples stay ordered.
    tier:
        ``"web"`` / ``"app"`` / ``"db"``.
    window:
        Sampled window length in seconds.
    metrics:
        Windowed values: ``throughput``, ``mean_response_time``,
        ``cpu_utilization``, ``concurrency``, ``pool_*`` ...
    """

    timestamp: float
    source: str
    tier: str
    window: float
    metrics: Dict[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = 0.0) -> float:
        """Fetch one metric with a default."""
        return self.metrics.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what a real Kafka payload would serialise)."""
        return {
            "timestamp": self.timestamp,
            "source": self.source,
            "tier": self.tier,
            "window": self.window,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            timestamp=float(data["timestamp"]),
            source=str(data["source"]),
            tier=str(data["tier"]),
            window=float(data["window"]),
            metrics={str(k): float(v) for k, v in data["metrics"].items()},
        )
