"""The broker: topics, partitions, group-offset bookkeeping.

A deliberately small Kafka: named topics with a fixed number of partitions,
key-hash partitioning, per-(group, topic, partition) committed offsets, and
wakeup events so blocking consumers learn about new data without polling the
simulation clock.  It exists because DCM's monitor agents and controller
"operate in different rates" (Section IV) — the broker decouples 1 Hz
producers from a 1/15 Hz consumer.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.broker.log import PartitionLog
from repro.errors import BrokerError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Topic:
    """A named stream of records spread over partitions."""

    def __init__(self, name: str, partitions: int, retention: int) -> None:
        if partitions < 1:
            raise BrokerError(f"topic needs >= 1 partition, got {partitions}")
        self.name = name
        self.partitions: List[PartitionLog] = [
            PartitionLog(retention) for _ in range(partitions)
        ]
        #: Events waiting for the next append to any partition.
        self._waiters: List[Event] = []

    def partition_for(self, key: Optional[str]) -> int:
        """Key-hash partitioning (round-robin-ish for ``None`` keys)."""
        if key is None:
            total = sum(len(p) for p in self.partitions)
            return total % len(self.partitions)
        return zlib.crc32(key.encode("utf-8")) % len(self.partitions)

    def append(self, key: Optional[str], value: Any) -> Tuple[int, int]:
        """Append; returns ``(partition, offset)`` and wakes blocked readers."""
        partition = self.partition_for(key)
        offset = self.partitions[partition].append(value)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed((partition, offset))
        return partition, offset

    def data_available_event(self, env: "Environment") -> Event:
        """An event that fires at the next append to this topic."""
        ev = Event(env)
        self._waiters.append(ev)
        return ev


class KafkaBroker:
    """The metric pipeline's storage server."""

    def __init__(self, env: "Environment", default_retention: int = 100_000) -> None:
        self.env = env
        self.default_retention = default_retention
        self._topics: Dict[str, Topic] = {}
        #: committed offsets: (group, topic, partition) -> next offset to read
        self._group_offsets: Dict[Tuple[str, str, int], int] = {}
        self._available = True
        self.rejected_produces = 0

    # -- topic management -----------------------------------------------------------
    def create_topic(
        self, name: str, partitions: int = 1, retention: Optional[int] = None
    ) -> Topic:
        """Create a topic; creating an existing name is an error."""
        if name in self._topics:
            raise BrokerError(f"topic {name!r} already exists")
        topic = Topic(name, partitions, retention or self.default_retention)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        """Look up a topic."""
        try:
            return self._topics[name]
        except KeyError:
            raise BrokerError(f"unknown topic {name!r}") from None

    def topics(self) -> List[str]:
        """All topic names."""
        return sorted(self._topics)

    # -- availability (BrokerOutage fault) -------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the broker accepts produces (outage = write-unavailable)."""
        return self._available

    def set_available(self, available: bool) -> None:
        """Take the broker down (or bring it back).  An outage rejects
        *produces* only — consumers can still read already-stored records,
        like a Kafka cluster that lost its ack quorum but not its disks."""
        self._available = bool(available)

    # -- producing -------------------------------------------------------------------
    def produce(self, topic: str, value: Any, key: Optional[str] = None) -> Tuple[int, int]:
        """Append ``value`` to ``topic``; returns ``(partition, offset)``."""
        if not self._available:
            self.rejected_produces += 1
            raise BrokerError(f"broker unavailable: produce to {topic!r} rejected")
        return self.topic(topic).append(key, value)

    # -- offset bookkeeping -------------------------------------------------------------
    def committed(self, group: str, topic: str, partition: int) -> int:
        """The group's committed (next-to-read) offset; 0 if never committed."""
        return self._group_offsets.get((group, topic, partition), 0)

    def commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        """Commit ``offset`` as the next-to-read position for the group."""
        if offset < 0:
            raise BrokerError(f"negative commit offset: {offset}")
        self._group_offsets[(group, topic, partition)] = offset

    # -- fetching ----------------------------------------------------------------------
    def fetch(
        self, topic: str, partition: int, offset: int, max_records: int = 100
    ) -> List[Tuple[int, Any]]:
        """Read records from one partition starting at ``offset``."""
        t = self.topic(topic)
        if not 0 <= partition < len(t.partitions):
            raise BrokerError(f"{topic!r} has no partition {partition}")
        return t.partitions[partition].read(offset, max_records)

    def end_offsets(self, topic: str) -> List[int]:
        """End offset of each partition of ``topic``."""
        return [p.end_offset for p in self.topic(topic).partitions]
