"""Offset-tracked consumers and consumer groups.

A :class:`Consumer` subscribes to topics, polls records from all partitions,
and commits its position through the broker's group-offset store — so a
restarted consumer (or a second member of the same group) resumes where the
group left off, exactly the property that lets DCM's controller crash and
recover without losing its place in the metric stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Tuple

from repro.broker.broker import KafkaBroker
from repro.errors import BrokerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Consumer:
    """A group member reading one or more topics.

    Parameters
    ----------
    broker:
        The broker to read from.
    group:
        Consumer-group id; committed offsets are shared per group.
    topics:
        Topics to subscribe to (must exist).
    auto_commit:
        Commit after every poll (default).  With ``auto_commit=False`` call
        :meth:`commit` manually for at-least-once handling.
    """

    def __init__(
        self,
        broker: KafkaBroker,
        group: str,
        topics: Iterable[str],
        auto_commit: bool = True,
    ) -> None:
        self.broker = broker
        self.group = group
        self.topics = list(topics)
        if not self.topics:
            raise BrokerError("consumer must subscribe to at least one topic")
        for name in self.topics:
            broker.topic(name)  # validates existence
        self.auto_commit = auto_commit
        self.records_consumed = 0
        # Uncommitted positions reached by the last poll.
        self._positions: dict[Tuple[str, int], int] = {}

    # -- polling ------------------------------------------------------------------
    def poll(self, max_records: int = 1000) -> List[Any]:
        """Fetch available records from all subscribed partitions.

        Returns the record values in (topic, partition, offset) order.  The
        consumer's position advances past everything returned; with
        ``auto_commit`` the new position is committed immediately.
        """
        out: List[Any] = []
        budget = max_records
        for topic_name in self.topics:
            topic = self.broker.topic(topic_name)
            for partition in range(len(topic.partitions)):
                if budget <= 0:
                    break
                start = self._position(topic_name, partition)
                rows = self.broker.fetch(topic_name, partition, start, budget)
                if not rows:
                    continue
                out.extend(value for _off, value in rows)
                budget -= len(rows)
                self._positions[(topic_name, partition)] = rows[-1][0] + 1
        self.records_consumed += len(out)
        if self.auto_commit and out:
            self.commit()
        return out

    def poll_wait(self, timeout: float, max_records: int = 1000):
        """Process generator: poll, blocking up to ``timeout`` sim-seconds
        for at least one record.  ``records = yield from consumer.poll_wait(5)``.
        """
        records = self.poll(max_records)
        if records:
            return records
        env: "Environment" = self.broker.env
        wakeups = [self.broker.topic(t).data_available_event(env) for t in self.topics]
        yield env.any_of(list(wakeups) + [env.timeout(timeout)])
        return self.poll(max_records)

    # -- positions -----------------------------------------------------------------
    def _position(self, topic: str, partition: int) -> int:
        key = (topic, partition)
        if key not in self._positions:
            self._positions[key] = self.broker.committed(self.group, topic, partition)
        return self._positions[key]

    def commit(self) -> None:
        """Commit every position reached by previous polls."""
        for (topic, partition), offset in self._positions.items():
            self.broker.commit(self.group, topic, partition, offset)

    def seek_to_end(self) -> None:
        """Skip to the live end of every partition (ignore history)."""
        for topic_name in self.topics:
            for partition, end in enumerate(self.broker.end_offsets(topic_name)):
                self._positions[(topic_name, partition)] = end
        if self.auto_commit:
            self.commit()

    def lag(self) -> int:
        """Total records between the consumer's position and the log end."""
        total = 0
        for topic_name in self.topics:
            for partition, end in enumerate(self.broker.end_offsets(topic_name)):
                total += max(0, end - self._position(topic_name, partition))
        return total
