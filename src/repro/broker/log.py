"""Append-only partition logs — the storage primitive under the broker.

Each partition is an ordered, offset-addressed log.  Offsets are absolute
and monotone: retention trims old entries but never renumbers, so consumers
resuming from a committed offset behave exactly like Kafka consumers
(reads below the retained base are clamped forward, the "out of range →
earliest" policy).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import BrokerError


class PartitionLog:
    """One partition: an append-only log with offset-based reads."""

    def __init__(self, retention: int = 100_000) -> None:
        if retention < 1:
            raise BrokerError(f"retention must be >= 1, got {retention}")
        self._retention = retention
        self._entries: List[Any] = []
        self._base_offset = 0  # offset of the first retained entry

    def __len__(self) -> int:
        return len(self._entries)

    # -- offsets -------------------------------------------------------------------
    @property
    def base_offset(self) -> int:
        """Offset of the earliest retained entry."""
        return self._base_offset

    @property
    def end_offset(self) -> int:
        """Offset one past the newest entry (the next append's offset)."""
        return self._base_offset + len(self._entries)

    # -- operations ----------------------------------------------------------------
    def append(self, value: Any) -> int:
        """Append ``value``; returns its offset.  Enforces retention.

        Trimming is batched (at 25 % overshoot) so appends stay amortised
        O(1) while the retained window never drops below ``retention``.
        """
        offset = self.end_offset
        self._entries.append(value)
        if len(self._entries) > self._retention * 1.25:
            excess = len(self._entries) - self._retention
            del self._entries[:excess]
            self._base_offset += excess
        return offset

    def read(self, offset: int, max_count: int = 100) -> List[Tuple[int, Any]]:
        """Read up to ``max_count`` entries starting at ``offset``.

        Offsets older than retention are clamped to the earliest retained
        entry; offsets at or past the end return an empty list.  Negative
        offsets are an error.
        """
        if offset < 0:
            raise BrokerError(f"negative offset: {offset}")
        if max_count < 1:
            return []
        start = max(offset, self._base_offset)
        if start >= self.end_offset:
            return []
        idx = start - self._base_offset
        stop = min(idx + max_count, len(self._entries))
        return [(self._base_offset + i, self._entries[i]) for i in range(idx, stop)]
