"""Online model estimation from the live metric stream (Section III-C).

"We can determine these parameters via online monitoring of the whole
system, then regress based on the measured system throughput and the thread
allocation of each server in the bottleneck tier."

:class:`OnlineModelEstimator` keeps per-tier (concurrency, throughput)
sample pools fed from the :class:`~repro.monitor.collector.MetricCollector`
and refits Eq (7) when enough fresh data accumulates.  Estimates can be
*seeded* with offline-trained models (the paper trains first with JMeter,
then lets DCM run) — a seed is used until an online fit of acceptable
quality replaces it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.model.fitting import FitResult, bin_samples, fit_concurrency_model
from repro.model.service_time import ConcurrencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.collector import MetricCollector


class OnlineModelEstimator:
    """Maintains the freshest credible concurrency model per tier.

    Parameters
    ----------
    collector:
        The metric stream aggregator.
    visit_ratios:
        Per-tier mean visits per HTTP request (normalises DB query
        throughput to request throughput).
    min_samples:
        Minimum binned points before attempting a fit.
    min_r_squared:
        Fits below this quality never replace the current model.
    min_range_ratio:
        The binned samples' max/min concurrency must span at least this
        ratio — a fit from a narrow operating band (e.g. a system sitting
        at one load level) would extrapolate wildly and must not displace
        a good seed.
    max_knee:
        Fits whose optimal concurrency exceeds this are rejected as
        degenerate (a near-zero fitted beta puts the knee at infinity and
        would tell the planner to open the pools wide).
    window:
        Only samples newer than ``now - window`` are used (stale operating
        points from a different configuration would bias the curve).
    """

    def __init__(
        self,
        collector: "MetricCollector",
        visit_ratios: Optional[Dict[str, float]] = None,
        min_samples: int = 10,
        min_r_squared: float = 0.85,
        min_range_ratio: float = 3.0,
        max_knee: float = 256.0,
        window: float = 300.0,
    ) -> None:
        self.collector = collector
        self.visit_ratios = visit_ratios or {"web": 1.0, "app": 1.0, "db": 2.0}
        self.min_samples = min_samples
        self.min_r_squared = min_r_squared
        self.min_range_ratio = min_range_ratio
        self.max_knee = max_knee
        self.window = window
        self._models: Dict[str, ConcurrencyModel] = {}
        self._fits: Dict[str, FitResult] = {}
        self._seeded: Dict[str, bool] = {}

    # -- seeding ------------------------------------------------------------------
    def seed(self, tier: str, model: ConcurrencyModel) -> None:
        """Install an offline-trained model for ``tier``."""
        self._models[tier] = model
        self._seeded[tier] = True

    def is_seeded(self, tier: str) -> bool:
        """Whether the tier's current model is still the offline seed."""
        return self._seeded.get(tier, False)

    # -- access --------------------------------------------------------------------
    def model(self, tier: str) -> ConcurrencyModel:
        """The current best model for ``tier`` (raises if none)."""
        try:
            return self._models[tier]
        except KeyError:
            raise ModelError(f"no model available for tier {tier!r}") from None

    def has_model(self, tier: str) -> bool:
        """Whether any model (seed or fitted) exists for ``tier``."""
        return tier in self._models

    def last_fit(self, tier: str) -> Optional[FitResult]:
        """The most recent accepted online fit for ``tier``."""
        return self._fits.get(tier)

    # -- refitting -----------------------------------------------------------------
    def samples(self, tier: str, now: float) -> List[Tuple[float, float]]:
        """Binned HTTP-normalised samples for ``tier`` within the window."""
        raw = self.collector.training_samples(
            tier,
            since=max(0.0, now - self.window),
            visit_ratio=self.visit_ratios.get(tier, 1.0),
        )
        return bin_samples(raw, bin_width=1.0)

    def refit(self, tier: str, now: float) -> Optional[FitResult]:
        """Attempt an online refit for ``tier``.

        Returns the accepted :class:`FitResult`, or ``None`` when data was
        insufficient or the fit did not clear ``min_r_squared`` (the
        previous model, possibly the seed, stays in force).
        """
        binned = self.samples(tier, now)
        if len(binned) < self.min_samples:
            return None
        lo = min(n for n, _ in binned)
        hi = max(n for n, _ in binned)
        if lo <= 0 or hi / lo < self.min_range_ratio:
            return None
        try:
            result = fit_concurrency_model(binned, tier=tier)
            knee = result.model.optimal_concurrency()
        except ModelError:
            return None
        if knee > self.max_knee:
            return None  # degenerate: near-zero beta, knee at infinity
        if result.r_squared < self.min_r_squared:
            return None
        self._models[tier] = result.model
        self._fits[tier] = result
        self._seeded[tier] = False
        return result
