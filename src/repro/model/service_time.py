"""The concurrency-aware model (Sections III-B, III-C) as a fitted artifact.

:class:`ConcurrencyModel` is what DCM *believes* about a tier: the quadratic
Eq (5) service-time law with parameters estimated from measurements.  It is
deliberately separate from :class:`repro.ntier.contention.ContentionModel`
(the simulator's ground truth, which additionally has the thrash term the
model does not know about) — keeping the learner and the world apart is the
point of the reproduction.

Closed forms implemented:

* Eq (5)  ``S*(N) = S0 + alpha(N-1) + beta N(N-1)``
* Eq (6)  ``S(N)  = S*(N) / N``
* Eq (7)  ``X(N)  = gamma K N / S*(N)``
* III-C   ``N_b   = sqrt((S0 - alpha)/beta)``
* Eq (8)  ``max X = gamma K / (V (2 sqrt((S0-alpha) beta) + alpha - beta))``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class ConcurrencyModel:
    """Fitted Eq (5)/(7) parameters for one tier.

    Parameters follow the paper's symbols.  ``gamma`` is the correction /
    normalisation factor of Eq (4); see DESIGN.md §2 for the identifiability
    discussion (the paper's (S0, alpha, beta, gamma) are only meaningful
    jointly; ``N_b``, ``X_max`` and R² are scale-free).
    """

    s0: float
    alpha: float
    beta: float
    gamma: float = 1.0
    tier: str = ""

    def __post_init__(self) -> None:
        if self.s0 <= 0:
            raise ModelError(f"fitted S0 must be positive, got {self.s0}")
        if self.alpha < 0 or self.beta < 0:
            raise ModelError("fitted alpha/beta must be non-negative")
        if self.gamma <= 0:
            raise ModelError(f"gamma must be positive, got {self.gamma}")

    # -- Eq (5)-(7) -----------------------------------------------------------
    def service_time(self, n: float) -> float:
        """Eq (5): per-request service time at concurrency ``n``."""
        if n < 1:
            raise ModelError(f"concurrency must be >= 1, got {n}")
        return self.s0 + self.alpha * (n - 1) + self.beta * n * (n - 1)

    def effective_service_time(self, n: float) -> float:
        """Eq (6): average service time ``S*(N)/N`` in steady pipeline."""
        return self.service_time(n) / n

    def throughput(self, n: float, servers: int = 1) -> float:
        """Eq (7): predicted throughput at per-server concurrency ``n``."""
        return self.gamma * servers * n / self.service_time(n)

    # -- Section III-C optimisation ------------------------------------------------
    def optimal_concurrency(self) -> float:
        """``N_b = sqrt((S0 - alpha)/beta)`` — the model's knee.

        Raises :class:`ModelError` when the fitted curve has no interior
        optimum (``beta == 0`` or ``alpha >= S0``): the controller then has
        no basis for capping concurrency.
        """
        if self.beta <= 0:
            raise ModelError(f"{self.tier or 'tier'}: beta == 0, no interior optimum")
        if self.alpha >= self.s0:
            raise ModelError(f"{self.tier or 'tier'}: alpha >= S0, no interior optimum")
        return math.sqrt((self.s0 - self.alpha) / self.beta)

    def optimal_concurrency_int(self) -> int:
        """The integer knee (better of floor/ceil under Eq (7))."""
        n_star = self.optimal_concurrency()
        lo, hi = max(1, math.floor(n_star)), max(1, math.ceil(n_star))
        return lo if self.throughput(lo) >= self.throughput(hi) else hi

    def max_throughput(self, servers: int = 1, visit_ratio: float = 1.0) -> float:
        """Eq (8): throughput at the optimal concurrency.

        With ``visit_ratio`` left at 1 this is the tier-local ceiling in the
        same units as the fitted samples (HTTP requests/s when the samples
        were HTTP-normalised, as ours are).
        """
        root = 2.0 * math.sqrt((self.s0 - self.alpha) * self.beta)
        denom = visit_ratio * (root + self.alpha - self.beta)
        if denom <= 0:
            raise ModelError("Eq (8) denominator non-positive; fit is degenerate")
        return self.gamma * servers / denom

    # -- stateful-tier adjustments ----------------------------------------------
    def with_cache_hit_rate(self, hit_rate: float) -> "ConcurrencyModel":
        """Effective db-tier curve when a cache absorbs ``hit_rate`` of visits.

        Our fitted samples are HTTP-normalised: S*(N) aggregates the db work
        *per HTTP request*.  A cache hit skips all of a request's queries,
        so the expected per-request db service time scales by the miss
        fraction ``(1 - h)`` uniformly — ``s0``, ``alpha`` and ``beta`` all
        shrink by it, while ``gamma`` (load-balancing efficiency) and the
        tier label are untouched.  Consequences the DCM estimator consumes
        unchanged: the knee ``N_b = sqrt((s0 - alpha)/beta)`` is invariant
        (both numerator terms scale by the same factor), and ``X_max``
        grows by ``1/(1 - h)`` — a warm cache raises HTTP capacity without
        moving the per-server concurrency optimum.
        """
        if not 0.0 <= hit_rate < 1.0:
            raise ModelError(f"hit_rate must be in [0, 1), got {hit_rate}")
        miss = 1.0 - hit_rate
        return ConcurrencyModel(
            s0=self.s0 * miss,
            alpha=self.alpha * miss,
            beta=self.beta * miss,
            gamma=self.gamma,
            tier=self.tier,
        )

    # -- presentation ---------------------------------------------------------------
    def rescaled(self, gamma: float) -> "ConcurrencyModel":
        """Re-express the same curve under a different gamma convention.

        ``X(N)`` is invariant: (S0, alpha, beta) are multiplied by
        ``gamma / self.gamma``.  Used to print Table-I-comparable numbers.
        """
        factor = gamma / self.gamma
        return ConcurrencyModel(
            s0=self.s0 * factor,
            alpha=self.alpha * factor,
            beta=self.beta * factor,
            gamma=gamma,
            tier=self.tier,
        )
