"""From fitted models to concrete soft-resource allocations (Section III-C).

The model yields one number per tier — the optimal request-processing
concurrency ``N_b`` — but the actuator needs pool sizes:

* **Tomcat thread pool**: the model's ``N_b`` counts threads *executing on
  the CPU*, while a Tomcat thread also idles on DB calls.  The paper notes
  "the realistic configuration of maxThreads ... should be larger than this
  theoretical value because not all threads will be in Active state"; we
  implement that with the measured *active fraction* (CPU concurrency /
  busy threads) so ``maxThreads = N_b / active_fraction`` keeps ``N_b``
  threads on the CPU.
* **Per-Tomcat DB connection pool**: MySQL's concurrency is the sum of all
  upstream pools, so each of ``K_app`` Tomcats gets
  ``N_b_mysql * K_db / K_app`` connections — the paper's "each Tomcat
  share[s] half of the optimal connection pool size" generalised.

A multiplicative ``headroom`` (default 1.1) covers estimation noise; the
paper's own DCM run starts with 40 connections for a knee of 36, i.e.
headroom ≈ 1.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelError
from repro.model.service_time import ConcurrencyModel
from repro.ntier.softconfig import DEFAULT_MAX_CONNECTIONS, SoftResourceConfig

#: Default safety margin over the theoretical optimum.
DEFAULT_HEADROOM = 1.1


@dataclass(frozen=True)
class AllocationPlan:
    """The planner's output: a soft config plus its reasoning trail."""

    soft: SoftResourceConfig
    tomcat_knee: int
    mysql_knee: int
    app_servers: int
    db_servers: int
    active_fraction: float
    headroom: float

    def describe(self) -> str:
        """Human-readable explanation of the plan."""
        return (
            f"plan {self.soft} (N_b app={self.tomcat_knee} db={self.mysql_knee}, "
            f"K app={self.app_servers} db={self.db_servers}, "
            f"active_frac={self.active_fraction:.2f}, headroom={self.headroom:.2f})"
        )


class AllocationPlanner:
    """Turns fitted tier models + topology into a soft-resource allocation.

    Parameters
    ----------
    apache_threads:
        Web-tier pool size to carry through (never the bottleneck; the paper
        keeps it at 1000).
    headroom:
        Multiplier over theoretical knees.
    min_pool / max_pool:
        Clamps for any computed pool size (safety rails).
    """

    def __init__(
        self,
        apache_threads: int = 1000,
        headroom: float = DEFAULT_HEADROOM,
        min_pool: int = 2,
        max_pool: int = 2000,
    ) -> None:
        if headroom < 1.0:
            raise ModelError(f"headroom must be >= 1, got {headroom}")
        if not 1 <= min_pool <= max_pool:
            raise ModelError("need 1 <= min_pool <= max_pool")
        self.apache_threads = apache_threads
        self.headroom = headroom
        self.min_pool = min_pool
        self.max_pool = max_pool

    def _clamp(self, value: float) -> int:
        return int(min(self.max_pool, max(self.min_pool, math.ceil(value))))

    def plan(
        self,
        tomcat_model: ConcurrencyModel,
        mysql_model: ConcurrencyModel,
        app_servers: int,
        db_servers: int,
        active_fraction: Optional[float] = None,
    ) -> AllocationPlan:
        """Compute the allocation for the given topology.

        ``active_fraction`` is the measured ratio of Tomcat CPU concurrency
        to busy threads (0 < f <= 1).  ``None`` falls back to a conservative
        0.5 (threads spend about half their residence blocked on the DB in
        the browse mix).
        """
        if app_servers < 1 or db_servers < 1:
            raise ModelError("server counts must be >= 1")
        fraction = 0.5 if active_fraction is None else active_fraction
        if not 0.05 <= fraction <= 1.0:
            raise ModelError(f"active_fraction out of range: {fraction}")

        tomcat_knee = tomcat_model.optimal_concurrency_int()
        mysql_knee = mysql_model.optimal_concurrency_int()

        threads = self._clamp(self.headroom * tomcat_knee / fraction)
        total_connections = self.headroom * mysql_knee * db_servers
        per_tomcat_connections = self._clamp(total_connections / app_servers)
        # Per-MySQL cap: must admit the worst case of every upstream pool
        # concentrating on one server, or it silently truncates the plan.
        # The stock default is kept whenever it already suffices.
        max_connections = max(
            DEFAULT_MAX_CONNECTIONS, app_servers * per_tomcat_connections
        )
        soft = SoftResourceConfig(
            apache_threads=self.apache_threads,
            tomcat_threads=threads,
            db_connections=per_tomcat_connections,
            max_connections=max_connections,
        )
        return AllocationPlan(
            soft=soft,
            tomcat_knee=tomcat_knee,
            mysql_knee=mysql_knee,
            app_servers=app_servers,
            db_servers=db_servers,
            active_fraction=fraction,
            headroom=self.headroom,
        )
