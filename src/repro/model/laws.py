"""Operational queueing laws (Section III-A).

The textbook operational laws the paper builds its model from:

* Utilization Law       ``U = X * S``
* Forced Flow Law       ``X_m = X * V_m``
* Little's Law          ``N = X * R``
* Interactive Response  ``R = N/X - Z``

plus the derived bottleneck analysis of Eq (2)–(4): with per-tier service
demands ``D_m = V_m * S_m``, the bottleneck is ``argmax D_m`` and the system
throughput ceiling is ``gamma * K_b / D_b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import ModelError


def utilization(throughput: float, service_time: float) -> float:
    """Utilization Law: ``U = X * S``."""
    return throughput * service_time


def forced_flow(system_throughput: float, visit_ratio: float) -> float:
    """Forced Flow Law: a tier's throughput is ``X * V_m`` (Eq 1)."""
    return system_throughput * visit_ratio


def system_throughput_from_tier(
    tier_utilization: float, visit_ratio: float, service_time: float
) -> float:
    """Eq (2): ``X = U_m / (V_m * S_m)``."""
    demand = visit_ratio * service_time
    if demand <= 0:
        raise ModelError("visit_ratio * service_time must be positive")
    return tier_utilization / demand


def littles_law_population(throughput: float, response_time: float) -> float:
    """Little's Law: ``N = X * R``."""
    return throughput * response_time


def interactive_response_time(users: float, throughput: float, think_time: float) -> float:
    """Interactive response-time law: ``R = N/X - Z``."""
    if throughput <= 0:
        raise ModelError("throughput must be positive")
    return users / throughput - think_time


@dataclass(frozen=True)
class TierDemand:
    """One tier's demand profile for bottleneck analysis."""

    tier: str
    visit_ratio: float
    service_time: float
    servers: int = 1

    @property
    def demand(self) -> float:
        """Service demand per HTTP request: ``D_m = V_m * S_m``."""
        return self.visit_ratio * self.service_time

    @property
    def capacity(self) -> float:
        """Throughput ceiling of this tier alone: ``K_m / D_m``."""
        if self.demand <= 0:
            raise ModelError(f"tier {self.tier} has non-positive demand")
        return self.servers / self.demand


def bottleneck(tiers: Sequence[TierDemand]) -> TierDemand:
    """The tier with the lowest capacity (highest per-server demand wins
    when server counts equalise) — Section III-A's ``max(V_m * S_m)``
    generalised to multi-server tiers."""
    if not tiers:
        raise ModelError("bottleneck analysis needs at least one tier")
    return min(tiers, key=lambda t: t.capacity)


def max_system_throughput(tiers: Sequence[TierDemand], gamma: float = 1.0) -> float:
    """Eq (4): ``X_max = gamma * K_b / (V_b * S_b)``."""
    return gamma * bottleneck(tiers).capacity


def demand_table(tiers: Sequence[TierDemand]) -> Dict[str, float]:
    """Per-tier demands keyed by tier name (for reports)."""
    return {t.tier: t.demand for t in tiers}


# ---------------------------------------------------------------------------
# M/M/c closed forms (the audit oracle's reference).
#
# With the concurrency curve degenerated (alpha = beta = delta = 0) a tier
# server is exactly an M/M/c station: a FIFO admission queue in front of
# ``c`` parallel exponential servers.  Erlang C plus Little's Law then give
# the steady state in closed form, which `repro.audit` compares against the
# simulator.
# ---------------------------------------------------------------------------

def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C delay probability ``C(c, a)`` — P(arrival must queue).

    ``offered_load`` is ``a = lambda / mu`` (dimensionless).  Requires a
    stable station (``a < c``).  Computed with the iterative recurrence
    ``term_k = term_{k-1} * a / k`` so large ``c`` never overflows a
    factorial.
    """
    if servers < 1:
        raise ModelError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ModelError(f"offered load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        raise ModelError(
            f"unstable station: offered load {offered_load} >= servers {servers}"
        )
    # Sum of a^k/k! for k < c, built incrementally.
    term = 1.0
    acc = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        acc += term
    # a^c / (c! (1 - rho))
    term *= offered_load / servers
    tail = term / (1.0 - offered_load / servers)
    return tail / (acc + tail)


@dataclass(frozen=True)
class MMCMetrics:
    """Closed-form steady state of an M/M/c queue."""

    servers: int
    arrival_rate: float
    service_rate: float
    utilization: float         # rho = a / c
    delay_probability: float   # Erlang C
    mean_wait: float           # W_q
    mean_response: float       # W = W_q + 1/mu
    mean_queue_length: float   # L_q = lambda W_q
    mean_in_system: float      # L = lambda W
    mean_in_service: float     # a = lambda / mu


def mmc_metrics(servers: int, arrival_rate: float, service_rate: float) -> MMCMetrics:
    """Closed-form M/M/c steady state for ``lambda`` arrivals/s into ``c``
    servers of rate ``mu`` each.  Requires stability (``lambda < c mu``)."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ModelError("arrival and service rates must be positive")
    offered = arrival_rate / service_rate
    delay_p = erlang_c(servers, offered)
    mean_wait = delay_p / (servers * service_rate - arrival_rate)
    mean_response = mean_wait + 1.0 / service_rate
    return MMCMetrics(
        servers=servers,
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        utilization=offered / servers,
        delay_probability=delay_p,
        mean_wait=mean_wait,
        mean_response=mean_response,
        mean_queue_length=arrival_rate * mean_wait,
        mean_in_system=arrival_rate * mean_response,
        mean_in_service=offered,
    )
