"""Analytic operating-point prediction for the closed n-tier network.

The simulator *measures*; this module *predicts* — a mean-value-analysis
style fixed point for the closed network of N think-time users over tiers
whose servers follow the concurrency-inflation law.  Unlike a classical
single-server PS station, our servers run every admitted request
concurrently at rate ``1/phi(n)``, so below the pool caps a tier behaves
like an infinite-server station with crowd-dependent slowdown; at the caps
it saturates at ``max_n n / (s * phi(n))``.

The solver iterates Little's-law consistency:

    x_m = X * V_m / K_m                     (per-server visit throughput)
    n_m = x_m * s_m * phi_m(n_m)            (in-service jobs, Little)
    R   = sum_m V_m * s_m * phi_m(n_m)      (response time, no saturation)
    X   = N / (R + Z)                       (interactive law)

clamping X to the tier capacity envelope and attributing the excess
population to queueing via ``R = N/X - Z`` when saturated.  Used to sanity-
check simulations, to size systems without running them, and (tested in
``tests/test_predictor.py``) validated against the simulator within a few
percent below saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ModelError

#: Fixed-point iteration controls.
_MAX_ITER = 200
_DAMPING = 0.5
_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TierSpec:
    """One tier's parameters for the analytic solver.

    Attributes
    ----------
    name:
        Label ("web" / "app" / "db").
    visit_ratio:
        Mean visits per HTTP request (V_m).
    base_demand:
        Single-threaded service demand *per visit* in seconds (s_m).
    inflation:
        ``phi(n) -> float`` with ``phi(1) == 1`` (the tier's contention law;
        pass ``ContentionModel.inflation``).
    servers:
        Number of servers in the tier (K_m).
    concurrency_cap:
        Maximum in-service requests per server (thread/connection pool);
        ``None`` means effectively unbounded.
    """

    name: str
    visit_ratio: float
    base_demand: float
    inflation: Callable[[int], float]
    servers: int = 1
    concurrency_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.visit_ratio <= 0 or self.base_demand <= 0:
            raise ModelError(f"{self.name}: visit ratio and demand must be positive")
        if self.servers < 1:
            raise ModelError(f"{self.name}: servers must be >= 1")
        if self.concurrency_cap is not None and self.concurrency_cap < 1:
            raise ModelError(f"{self.name}: concurrency cap must be >= 1")

    # -- per-server service physics ------------------------------------------------
    def phi(self, n: float) -> float:
        """Inflation at (fractional) concurrency ``n`` (linear interpolation)."""
        if n <= 1.0:
            return 1.0
        lo = int(n)
        hi = lo + 1
        f_lo = float(self.inflation(lo))
        f_hi = float(self.inflation(hi))
        return f_lo + (f_hi - f_lo) * (n - lo)

    def rate(self, n: float) -> float:
        """Per-server visit throughput with ``n`` in service: ``n/(s*phi)``."""
        if n <= 0:
            return 0.0
        return n / (self.base_demand * self.phi(n))

    def search_limit(self) -> int:
        """Upper bound of the concurrency search range."""
        return self.concurrency_cap if self.concurrency_cap is not None else 4096

    def peak_rate(self) -> float:
        """Best per-server visit throughput within the cap."""
        return max(self.rate(n) for n in range(1, self.search_limit() + 1))

    def capacity(self) -> float:
        """Tier HTTP-request capacity: ``K * peak / V``."""
        return self.servers * self.peak_rate() / self.visit_ratio

    def concurrency_for_rate(self, x: float) -> float:
        """Invert ``rate(n) = x`` on the rising branch (bisection).

        ``x`` at or above the peak returns the rate-maximising concurrency.
        """
        if x <= 0:
            return 0.0
        limit = self.search_limit()
        n_star = max(range(1, limit + 1), key=self.rate)
        if x >= self.rate(n_star):
            return float(n_star)
        lo, hi = 0.0, float(n_star)
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.rate(mid) < x:
                lo = mid
            else:
                hi = mid
        return hi


@dataclass(frozen=True)
class OperatingPoint:
    """The solver's prediction for one population size."""

    users: int
    throughput: float
    response_time: float
    saturated: bool
    bottleneck: str
    tier_concurrency: Dict[str, float]

    def utilization(self, tier_capacity: Dict[str, float]) -> Dict[str, float]:
        """Throughput as a fraction of each tier's capacity."""
        return {
            name: self.throughput / cap if cap > 0 else 0.0
            for name, cap in tier_capacity.items()
        }


def predict_operating_point(
    users: int,
    think_time: float,
    tiers: Sequence[TierSpec],
) -> OperatingPoint:
    """Solve the closed-network fixed point for ``users`` clients.

    Raises :class:`ModelError` on invalid inputs; always converges (damped
    iteration on a monotone map, then capacity clamping).
    """
    if users < 1:
        raise ModelError("users must be >= 1")
    if think_time < 0:
        raise ModelError("think_time must be >= 0")
    if not tiers:
        raise ModelError("need at least one tier")

    capacities = {t.name: t.capacity() for t in tiers}
    bottleneck = min(capacities, key=capacities.get)
    x_max = capacities[bottleneck]

    # Damped fixed point on X.
    base_rt = sum(t.visit_ratio * t.base_demand for t in tiers)
    x = min(users / (think_time + base_rt), x_max)
    conc: Dict[str, float] = {}
    for _ in range(_MAX_ITER):
        rt = 0.0
        for t in tiers:
            per_server = x * t.visit_ratio / t.servers
            n = t.concurrency_for_rate(per_server)
            conc[t.name] = n
            rt += t.visit_ratio * t.base_demand * t.phi(max(1.0, n))
        x_new = min(users / (think_time + rt), x_max)
        if abs(x_new - x) < _TOLERANCE * max(1.0, x):
            x = x_new
            break
        x = (1 - _DAMPING) * x + _DAMPING * x_new

    saturated = x >= 0.995 * x_max
    if saturated:
        x = x_max
        response_time = users / x - think_time
        # At saturation the bottleneck runs at its optimal concurrency and
        # the excess population queues ahead of it.
        for t in tiers:
            per_server = x * t.visit_ratio / t.servers
            conc[t.name] = t.concurrency_for_rate(per_server)
    else:
        response_time = users / x - think_time
    return OperatingPoint(
        users=users,
        throughput=x,
        response_time=max(0.0, response_time),
        saturated=saturated,
        bottleneck=bottleneck,
        tier_concurrency=dict(conc),
    )


def predict_curve(
    user_levels: Sequence[int],
    think_time: float,
    tiers: Sequence[TierSpec],
) -> Tuple[OperatingPoint, ...]:
    """Predict a whole throughput/RT-vs-users curve."""
    return tuple(predict_operating_point(u, think_time, tiers) for u in user_levels)


def specs_from_system(system) -> Tuple[TierSpec, ...]:
    """Build tier specs from a live :class:`~repro.ntier.topology.NTierSystem`.

    Uses the catalogue's mix-mean demands and the tiers' ground-truth
    contention laws; pool caps come from the current soft configuration.
    """
    means = system.catalog.mean_demands()
    visits = system.catalog.visit_ratios()
    web = system.tier_servers("web")
    app = system.tier_servers("app")
    db = system.tier_servers("db")
    if not (web and app and db):
        raise ModelError("system must have at least one server per tier")
    return (
        TierSpec(
            name="web",
            visit_ratio=visits["web"],
            base_demand=means["apache"],
            inflation=web[0].contention.inflation,
            servers=len(web),
            concurrency_cap=web[0].threads.size,
        ),
        TierSpec(
            name="app",
            visit_ratio=visits["app"],
            base_demand=means["tomcat"],
            inflation=app[0].contention.inflation,
            servers=len(app),
            concurrency_cap=None,  # CPU concurrency, not thread count (threads
            # blocked on the DB are CPU-neutral; see DESIGN.md §5)
        ),
        TierSpec(
            name="db",
            visit_ratio=visits["db"],
            base_demand=means["db_total"] / visits["db"],
            inflation=db[0].contention.inflation,
            servers=len(db),
            concurrency_cap=system.max_db_concurrency() // max(1, len(db)),
        ),
    )
