"""The paper's core contribution: the concurrency-aware model.

Operational laws (Eq 1–4), the multi-threading service-time model and its
closed-form optimum (Eq 5–8), weighted least-squares fitting with R²
(Section V-A), the allocation planner that turns knees into pool sizes, and
the online estimator that refits from the live metric stream.
"""

from repro.model.fitting import (
    FitResult,
    bin_samples,
    estimate_scaling_correction,
    fit_concurrency_model,
)
from repro.model.laws import (
    MMCMetrics,
    TierDemand,
    bottleneck,
    demand_table,
    erlang_c,
    forced_flow,
    mmc_metrics,
    interactive_response_time,
    littles_law_population,
    max_system_throughput,
    system_throughput_from_tier,
    utilization,
)
from repro.model.online import OnlineModelEstimator
from repro.model.optimizer import DEFAULT_HEADROOM, AllocationPlan, AllocationPlanner
from repro.model.predictor import (
    OperatingPoint,
    TierSpec,
    predict_curve,
    predict_operating_point,
    specs_from_system,
)
from repro.model.service_time import ConcurrencyModel

__all__ = [
    "AllocationPlan",
    "AllocationPlanner",
    "ConcurrencyModel",
    "DEFAULT_HEADROOM",
    "FitResult",
    "MMCMetrics",
    "OperatingPoint",
    "OnlineModelEstimator",
    "TierDemand",
    "TierSpec",
    "bin_samples",
    "bottleneck",
    "demand_table",
    "erlang_c",
    "estimate_scaling_correction",
    "fit_concurrency_model",
    "forced_flow",
    "mmc_metrics",
    "interactive_response_time",
    "littles_law_population",
    "max_system_throughput",
    "predict_curve",
    "predict_operating_point",
    "specs_from_system",
    "system_throughput_from_tier",
    "utilization",
]
