"""Least-squares estimation of the concurrency-aware model (Section V-A).

The paper: "We use the Least-Square Fitting method to estimate the
parameters in Equation 7."  Eq (7) is nonlinear in X but *linear* in the
transformed target ``D(N) = N / X(N)``:

    D(N) = c0 + c1*(N-1) + c2*N*(N-1),   with (c0,c1,c2) = (S0,alpha,beta)/gamma

so ordinary weighted least squares on the features ``[1, N-1, N(N-1)]``
recovers the curve.  We weight samples by ``(X_i^2 / N_i)^2``, which makes
the linearised fit a first-order approximation of least squares *on
throughput* (the quantity the paper's R² is reported against).

Goodness of fit (R²) is computed on throughput predictions, matching
Table I's ``R^2`` row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.model.service_time import ConcurrencyModel

#: Smallest admissible fitted coefficient (clips tiny negatives from noise).
_COEFF_FLOOR = 1e-12


@dataclass(frozen=True)
class FitResult:
    """Outcome of one model fit."""

    model: ConcurrencyModel
    r_squared: float
    n_samples: int
    concurrency_range: Tuple[float, float]

    def summary(self) -> str:
        """One-line human-readable summary."""
        m = self.model
        return (
            f"{m.tier or 'tier'}: S0={m.s0:.3e} alpha={m.alpha:.3e} "
            f"beta={m.beta:.3e} gamma={m.gamma:.3g} R2={self.r_squared:.3f} "
            f"N_b={m.optimal_concurrency_int()} Xmax={m.max_throughput():.0f}"
        )


def bin_samples(
    samples: Sequence[Tuple[float, float]], bin_width: float = 1.0
) -> List[Tuple[float, float]]:
    """Aggregate raw ``(concurrency, throughput)`` samples into bins.

    Monitoring produces many noisy per-window samples at similar
    concurrencies; binning by rounded concurrency and averaging throughput
    per bin stabilises the regression exactly like averaging repeated
    measurements at one JMeter setting.
    """
    if bin_width <= 0:
        raise ModelError("bin_width must be positive")
    sums: dict[float, list[float]] = {}
    for conc, xput in samples:
        if conc <= 0 or xput <= 0:
            continue
        key = round(conc / bin_width) * bin_width
        if key <= 0:
            continue  # sub-half-bin concurrency: no usable curve position
        sums.setdefault(key, []).append(xput)
    return sorted((k, float(np.mean(v))) for k, v in sums.items())


def _gauss_newton_refine(
    coeffs: np.ndarray,
    features: np.ndarray,
    n_arr: np.ndarray,
    x_arr: np.ndarray,
    iterations: int = 25,
) -> np.ndarray:
    """Refine the linearised estimate by least squares in *throughput* space.

    The linearised fit minimises residuals of ``D = N/X``, which over-weights
    low-concurrency points; the paper's R² (and what the controller cares
    about) is accuracy in ``X``.  A few damped Gauss-Newton steps on
    ``r_i = X_i - N_i / D_i(theta)`` fix that; the Jacobian is linear per
    step because ``D`` is linear in the parameters.
    """

    def sse(c: np.ndarray) -> float:
        d = features @ c
        if np.any(d <= 0):
            return float("inf")
        return float(np.sum((x_arr - n_arr / d) ** 2))

    best = coeffs.copy()
    best_sse = sse(best)
    current = best.copy()
    damping = 1.0
    for _ in range(iterations):
        d = features @ current
        if np.any(d <= 0):
            break
        residuals = x_arr - n_arr / d
        jacobian = (n_arr / d**2)[:, None] * features
        try:
            step, *_ = np.linalg.lstsq(jacobian, residuals, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate data
            break
        improved = False
        for _backtrack in range(8):
            candidate = np.maximum(current + damping * step, _COEFF_FLOOR)
            cand_sse = sse(candidate)
            if cand_sse < best_sse - 1e-15:
                current = candidate
                best, best_sse = candidate, cand_sse
                improved = True
                damping = min(1.0, damping * 2.0)
                break
            damping *= 0.5
        if not improved:
            break
    return best


def fit_concurrency_model(
    samples: Sequence[Tuple[float, float]],
    tier: str = "",
    gamma: float = 1.0,
    min_distinct: int = 4,
) -> FitResult:
    """Fit Eq (7) to ``(concurrency, single-server throughput)`` samples.

    Parameters
    ----------
    samples:
        Measured pairs; concurrency may be fractional (window averages).
    tier:
        Label stored on the model.
    gamma:
        Normalisation convention for reporting (S0, alpha, beta) — the fit
        itself is gamma-invariant (see DESIGN.md §2).  Predictions from the
        returned model are identical for any ``gamma``.
    min_distinct:
        Minimum number of distinct concurrency levels required.

    Raises
    ------
    ModelError
        On insufficient or degenerate data.
    """
    clean = [(float(n), float(x)) for n, x in samples if n > 0 and x > 0]
    if len({round(n, 6) for n, _ in clean}) < min_distinct:
        raise ModelError(
            f"need >= {min_distinct} distinct concurrency levels, "
            f"got {len({round(n, 6) for n, _ in clean})}"
        )
    n_arr = np.array([n for n, _ in clean])
    x_arr = np.array([x for _, x in clean])

    # Linearised target and features.
    target = n_arr / x_arr
    features = np.column_stack([np.ones_like(n_arr), n_arr - 1.0, n_arr * (n_arr - 1.0)])
    weights = (x_arr**2 / n_arr) ** 2
    w_sqrt = np.sqrt(weights)
    coeffs, *_ = np.linalg.lstsq(features * w_sqrt[:, None], target * w_sqrt, rcond=None)
    coeffs = np.maximum(coeffs, _COEFF_FLOOR)
    coeffs = _gauss_newton_refine(coeffs, features, n_arr, x_arr)
    c0, c1, c2 = (max(float(c), _COEFF_FLOOR) for c in coeffs)

    model = ConcurrencyModel(
        s0=c0 * gamma, alpha=c1 * gamma, beta=c2 * gamma, gamma=gamma, tier=tier
    )
    predicted = np.array([model.throughput(n) for n in n_arr])
    ss_res = float(np.sum((x_arr - predicted) ** 2))
    ss_tot = float(np.sum((x_arr - x_arr.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(
        model=model,
        r_squared=r_squared,
        n_samples=len(clean),
        concurrency_range=(float(n_arr.min()), float(n_arr.max())),
    )


def estimate_scaling_correction(
    single_server_max: float, multi_server_max: float, servers: int
) -> float:
    """Estimate the paper's γ-style correction for multi-server tiers.

    Eq (4) writes ``X_max = gamma * K_b / D_b``; with the single-server
    ceiling measured as ``X1`` and the K-server ceiling as ``XK``, the
    *scaling efficiency* is ``XK / (K * X1)`` — 1.0 for perfectly linear
    scaling, below 1 under load imbalance ("the load inbalancing problem
    among servers", Section III-A).
    """
    if servers < 1:
        raise ModelError(f"servers must be >= 1, got {servers}")
    if single_server_max <= 0 or multi_server_max <= 0:
        raise ModelError("throughput ceilings must be positive")
    return multi_server_max / (servers * single_server_max)
