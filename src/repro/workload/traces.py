"""Workload traces: time series of concurrent-user targets.

The paper's Section V-B drives the system with the "Large Variation" trace
from the AutoScale paper (Gandhi et al., TOCS 2012), replayed by the revised
RUBBoS client emulator.  The original trace file is not publicly archived,
so :func:`large_variation` synthesises a trace that reproduces the paper's
narrative timeline exactly: a sharp burst at ~50–90 s (driving the first
Tomcat/MySQL scale-outs), a second climb around ~220–260 s (third Tomcat and
MySQL), a long decline that triggers scale-ins, and a flash crowd at
~530–560 s that catches the shrunken system with one cold MySQL.

Traces are expressed as *fractions of a reference capacity* so the same
shape can be replayed against any demand scaling; generators multiply by a
``max_users`` population.
"""

from __future__ import annotations

import csv
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadTrace:
    """A piecewise-linear target-user curve.

    ``times`` must be strictly increasing and start at 0; ``levels`` holds
    the target at each time (interpolated linearly in between).  Levels are
    dimensionless fractions unless the trace was built with absolute users.
    """

    times: Tuple[float, ...]
    levels: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.levels):
            raise ConfigurationError("times and levels must have equal length")
        if len(self.times) < 2:
            raise ConfigurationError("a trace needs at least two points")
        if self.times[0] != 0.0:
            raise ConfigurationError("traces must start at t = 0")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ConfigurationError("trace times must be strictly increasing")
        if any(level < 0 for level in self.levels):
            raise ConfigurationError("trace levels must be non-negative")

    # -- evaluation ---------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return self.times[-1]

    def level_at(self, t: float) -> float:
        """Linearly interpolated level at time ``t`` (clamped at the ends)."""
        if t <= self.times[0]:
            return self.levels[0]
        if t >= self.times[-1]:
            return self.levels[-1]
        idx = bisect_right(self.times, t)
        t0, t1 = self.times[idx - 1], self.times[idx]
        l0, l1 = self.levels[idx - 1], self.levels[idx]
        return l0 + (l1 - l0) * (t - t0) / (t1 - t0)

    def sample(self, step: float = 1.0) -> List[Tuple[float, float]]:
        """Evaluate the trace every ``step`` seconds (inclusive of the end)."""
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        points = []
        t = 0.0
        while t < self.duration:
            points.append((t, self.level_at(t)))
            t += step
        points.append((self.duration, self.level_at(self.duration)))
        return points

    # -- transforms ------------------------------------------------------------------
    def scaled(self, factor: float) -> "WorkloadTrace":
        """Multiply every level by ``factor``."""
        return WorkloadTrace(self.times, tuple(level * factor for level in self.levels))

    def stretched(self, factor: float) -> "WorkloadTrace":
        """Multiply every time by ``factor`` (slow down / speed up)."""
        return WorkloadTrace(tuple(t * factor for t in self.times), self.levels)

    @property
    def peak_to_mean(self) -> float:
        """Peak-to-mean ratio of the (sampled) trace — a burstiness summary."""
        samples = np.array([level for _, level in self.sample(1.0)])
        mean = samples.mean()
        return float(samples.max() / mean) if mean > 0 else float("inf")

    # -- persistence (the paper's emulator reads a trace file) -------------------------
    def to_csv(self, path: str) -> None:
        """Write the trace as ``time,level`` CSV rows."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time", "level"])
            for t, level in zip(self.times, self.levels):
                writer.writerow([t, level])

    @classmethod
    def from_csv(cls, path: str) -> "WorkloadTrace":
        """Read a trace written by :meth:`to_csv` (header optional)."""
        times: List[float] = []
        levels: List[float] = []
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row or row[0].strip().lower() == "time":
                    continue
                times.append(float(row[0]))
                levels.append(float(row[1]))
        return cls(tuple(times), tuple(levels))


# -------------------------------------------------------------------------------
# Builders
# -------------------------------------------------------------------------------

def step_trace(levels: Sequence[float], step_duration: float) -> WorkloadTrace:
    """A staircase: each level held for ``step_duration`` seconds (with 1 s
    ramps between steps to keep the trace well-defined)."""
    if not levels:
        raise ConfigurationError("step_trace needs at least one level")
    ramp = min(1.0, step_duration / 10.0)
    times: List[float] = [0.0]
    values: List[float] = [levels[0]]
    for i, level in enumerate(levels):
        end = (i + 1) * step_duration
        if i + 1 < len(levels):
            times.extend([end, end + ramp])
            values.extend([level, levels[i + 1]])
        else:
            times.append(end)
            values.append(level)
    return WorkloadTrace(tuple(times), tuple(values))


def sine_trace(duration: float, period: float, low: float, high: float) -> WorkloadTrace:
    """A smooth diurnal-style oscillation between ``low`` and ``high``."""
    if duration <= 0 or period <= 0:
        raise ConfigurationError("duration and period must be positive")
    times = np.arange(0.0, duration + 1.0, max(1.0, period / 60.0))
    mid, amp = (high + low) / 2.0, (high - low) / 2.0
    levels = mid + amp * np.sin(2.0 * np.pi * times / period - np.pi / 2.0)
    return WorkloadTrace(tuple(float(t) for t in times), tuple(float(v) for v in levels))


def spike_trace(
    duration: float, base: float, spike: float, spike_start: float, spike_length: float
) -> WorkloadTrace:
    """Flat base load with one rectangular flash crowd."""
    if not 0.0 < spike_start < spike_start + spike_length < duration:
        raise ConfigurationError("spike must fall strictly inside the trace")
    return WorkloadTrace(
        (0.0, spike_start, spike_start + 2.0, spike_start + spike_length,
         spike_start + spike_length + 2.0, duration),
        (base, base, spike, spike, base, base),
    )


def large_variation() -> WorkloadTrace:
    """The synthetic "Large Variation" trace (fractions of peak users).

    Shaped to the paper's Fig 5 narrative on a 600 s horizon:

    * ``50–70 s``  — first burst: 0.25 → 0.52 of peak.  Both controlled
      tiers scale out (Tomcat ~67 s, MySQL ~80 s in the paper); while the
      slower stateful MySQL replica warms, the hardware-only baseline's two
      default connection pools funnel 2 × 80 concurrent queries into the
      lone MySQL — the paper's first response-time incident.
    * ``220–300 s`` — second climb to 1.0: third Tomcat and third MySQL
      join (paper: the 227–259 s deterioration).
    * ``300–470 s`` — long decline into a shallow trough (0.34) sized so
      the *DB* tier scales back to one server while the baseline's app tier
      legitimately keeps two Tomcats — recreating the paper's pre-flash
      state (MySQL 2 → 1 at 528 s).
    * ``530–565 s`` — flash crowd to 0.52 that slams the shrunken system:
      160 connections into one cold MySQL for the baseline (the paper's
      third spike at ~550 s), ~40 for DCM.
    """
    points = (
        (0.0, 0.25),
        (50.0, 0.25),
        (70.0, 0.52),
        (220.0, 0.52),
        (240.0, 1.00),
        (300.0, 1.00),
        (360.0, 0.70),
        (420.0, 0.45),
        (470.0, 0.34),
        (530.0, 0.34),
        (537.0, 0.52),
        (565.0, 0.52),
        (585.0, 0.40),
        (600.0, 0.35),
    )
    times, levels = zip(*points)
    return WorkloadTrace(times, levels)
