"""JMeter-style workload generator: precisely controlled concurrency.

Section V-A: "we set the think time between consecutive HTTP requests from
the same thread to be zero, [so] the workload concurrency for the target
system can be controlled by the number of concurrent users specified in
JMeter."  This generator runs exactly that: ``concurrency`` closed-loop
sessions with zero think time, used to train the concurrency-aware model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import ConfigurationError
from repro.workload.session import UserSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment


class JMeterGenerator:
    """A fixed population of zero-think-time users."""

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        concurrency: int,
        stagger: float = 0.0,
    ) -> None:
        if concurrency < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
        self.env = env
        self.system = system
        self.concurrency = int(concurrency)
        self.stagger = stagger
        self._sessions: List[UserSession] = []

    def start(self) -> None:
        """Launch all sessions (idempotence is an error by design)."""
        if self._sessions:
            raise ConfigurationError("generator already started")
        for i in range(self.concurrency):
            delay = self.stagger * i / self.concurrency if self.stagger else 0.0
            session = UserSession(self.env, self.system, think_time=0.0, initial_delay=delay)
            session.start()
            self._sessions.append(session)

    def stop(self) -> None:
        """Gracefully stop all sessions."""
        for session in self._sessions:
            session.stop()

    @property
    def sessions(self) -> List[UserSession]:
        """The live session objects."""
        return list(self._sessions)
