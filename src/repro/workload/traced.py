"""The revised RUBBoS client emulator: trace-driven user populations.

Section II-A: "the revised RUBBoS client emulator ... simulates realistic
workload under a dynamically changing number of concurrent users based on a
workload trace file."  :class:`TraceDrivenGenerator` replays a
:class:`~repro.workload.traces.WorkloadTrace` by retargeting a
:class:`~repro.workload.rubbos.RubbosGenerator` population at a fixed update
interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workload.rubbos import DEFAULT_THINK_TIME, RubbosGenerator
from repro.workload.traces import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment
    from repro.sim.events import Process


class TraceDrivenGenerator:
    """Replays a workload trace as a dynamically-sized user population.

    Parameters
    ----------
    env, system:
        Environment and target system.
    trace:
        The trace to replay.  Levels are multiplied by ``max_users``.
    max_users:
        Population corresponding to trace level 1.0.
    update_interval:
        How often the population is retargeted (seconds).
    think_time / streams:
        Forwarded to the underlying :class:`RubbosGenerator`.
    population:
        A pre-built population to retarget instead of the default
        :class:`RubbosGenerator` — anything exposing ``users`` /
        ``set_users`` / ``stop``, e.g. a
        :class:`~repro.workload.batched.BatchedPopulation` for
        million-user traces.  When given, ``think_time``/``streams``
        are ignored (the population was already configured).
    """

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        trace: WorkloadTrace,
        max_users: int,
        update_interval: float = 1.0,
        think_time: float = DEFAULT_THINK_TIME,
        streams: Optional[RandomStreams] = None,
        population=None,
    ) -> None:
        if max_users < 1:
            raise ConfigurationError(f"max_users must be >= 1, got {max_users}")
        if update_interval <= 0:
            raise ConfigurationError("update_interval must be positive")
        self.env = env
        self.trace = trace
        self.max_users = int(max_users)
        self.update_interval = update_interval
        self.population = population if population is not None else RubbosGenerator(
            env, system, users=0, think_time=think_time, streams=streams
        )
        self._applied: List[Tuple[float, int]] = []
        self._process: Optional["Process"] = None
        self._stopping = False

    # -- control -------------------------------------------------------------------
    def start(self) -> "Process":
        """Begin replaying the trace; returns the replay process (which
        finishes when the trace ends, stopping all users)."""
        if self._process is not None:
            raise ConfigurationError("trace replay already started")
        self._process = self.env.process(self._replay())
        return self._process

    def stop(self) -> None:
        """Stop replaying and gracefully wind the population down; the
        replay process exits at its next update tick."""
        self._stopping = True
        self.population.stop()

    def target_at(self, t: float) -> int:
        """User target at trace time ``t`` (level × max_users, rounded)."""
        return int(round(self.trace.level_at(t) * self.max_users))

    @property
    def applied_targets(self) -> List[Tuple[float, int]]:
        """``(time, users)`` targets actually applied during replay."""
        return list(self._applied)

    # -- internals ------------------------------------------------------------------
    def _replay(self):
        start = self.env.now
        while not self._stopping:
            elapsed = self.env.now - start
            if elapsed > self.trace.duration:
                break
            target = self.target_at(elapsed)
            if target != self.population.users:
                self.population.set_users(target)
                self._applied.append((self.env.now, target))
            yield self.env.timeout(self.update_interval)
        self.population.stop()
        return len(self._applied)
