"""Burstiness metrics and burst-injected trace synthesis.

The paper stresses that web workloads are "naturally bursty" and cites Mi et
al. (ICAC 2009), who characterise burstiness with the *index of dispersion*
of the arrival counting process and inject it into closed-loop benchmarks by
modulating client behaviour with a 2-state Markov process.  This module
provides both: :func:`index_of_dispersion` to *measure* burstiness of a
request stream, and :func:`mmpp2_trace` to *synthesise* user traces from a
2-state Markov-modulated process (an ON/OFF flash-crowd alternation).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.traces import WorkloadTrace


def arrival_counts(arrival_times: Sequence[float], window: float) -> np.ndarray:
    """Bin arrival timestamps into consecutive windows of ``window`` seconds."""
    if window <= 0:
        raise ConfigurationError("window must be positive")
    times = np.asarray(sorted(arrival_times), dtype=float)
    if times.size == 0:
        return np.zeros(0)
    n_bins = int(np.ceil((times[-1] + 1e-12) / window)) or 1
    counts, _ = np.histogram(times, bins=n_bins, range=(0.0, n_bins * window))
    return counts.astype(float)


def index_of_dispersion(counts: Sequence[float]) -> float:
    """Index of dispersion for counts: ``I = Var(N) / Mean(N)``.

    ``I == 1`` for a Poisson stream; bursty streams (as produced by flash
    crowds) have ``I >> 1``.  Raises on an empty or zero-mean series.
    """
    arr = np.asarray(counts, dtype=float)
    if arr.size < 2:
        raise ConfigurationError("need at least two count windows")
    mean = arr.mean()
    if mean <= 0:
        raise ConfigurationError("count series has zero mean")
    return float(arr.var(ddof=1) / mean)


def burstiness_profile(
    arrival_times: Sequence[float], windows: Sequence[float] = (1.0, 5.0, 10.0, 30.0)
) -> dict:
    """Index of dispersion across several aggregation windows.

    Burstiness at multiple time scales (a hallmark of real traffic) shows up
    as ``I`` growing with the window size.
    """
    return {w: index_of_dispersion(arrival_counts(arrival_times, w)) for w in windows}


def mmpp2_trace(
    duration: float,
    low: float,
    high: float,
    mean_low_sojourn: float,
    mean_high_sojourn: float,
    rng: np.random.Generator,
    ramp: float = 2.0,
) -> WorkloadTrace:
    """Synthesise a user trace from a 2-state Markov-modulated process.

    The population alternates between a ``low`` and a ``high`` level with
    exponentially distributed sojourn times — the classic MMPP(2) burstiness
    injection of Mi et al., expressed at the user-population level (which is
    how a closed-loop benchmark can actually realise it).

    Parameters mirror :class:`WorkloadTrace` conventions: levels are
    fractions of peak, ``ramp`` seconds are spent transitioning.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if mean_low_sojourn <= 0 or mean_high_sojourn <= 0:
        raise ConfigurationError("sojourn means must be positive")
    if not 0 <= low <= high:
        raise ConfigurationError("need 0 <= low <= high")
    times: List[float] = [0.0]
    levels: List[float] = [low]
    t = 0.0
    state_high = False
    while t < duration:
        sojourn = float(
            rng.exponential(mean_high_sojourn if state_high else mean_low_sojourn)
        )
        sojourn = max(sojourn, ramp + 0.1)
        t_end = min(t + sojourn, duration)
        level = high if state_high else low
        if t_end < duration:
            times.extend([t_end, min(t_end + ramp, duration)])
            levels.extend([level, (low if state_high else high)])
            t = t_end + ramp
        else:
            times.append(duration)
            levels.append(level)
            t = duration
        state_high = not state_high
    # Deduplicate any equal trailing times produced by clamping.
    cleaned_t: List[float] = []
    cleaned_l: List[float] = []
    for ti, li in zip(times, levels):
        if cleaned_t and ti <= cleaned_t[-1]:
            continue
        cleaned_t.append(ti)
        cleaned_l.append(li)
    if len(cleaned_t) < 2:
        cleaned_t.append(duration)
        cleaned_l.append(levels[-1])
    return WorkloadTrace(tuple(cleaned_t), tuple(cleaned_l))
