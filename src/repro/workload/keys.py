"""Seeded key-popularity streams for the stateful tiers.

The browse-only mix of the paper has no notion of data identity — every
request is interchangeable.  The cache and sharding tiers need the opposite:
each request touches one *key*, and key popularity follows the heavy-tailed
(Zipf) distributions measured for web workloads.  A
:class:`ZipfKeySampler` draws keys over a *finite* keyspace from its own
named random stream (``workload.keys``), so keyed scenarios stay
deterministic per seed and keyless scenarios draw nothing extra.

The skew exponent ``s`` weights key ``k`` (1-based rank) proportionally to
``1/k**s``; ``s = 0`` is uniform, ``s ≈ 1`` classic Zipf, larger values
concentrate traffic on a few hot keys — and, through the consistent-hash
ring, on a hot *shard*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ZipfKeySampler:
    """Draws integer keys ``0 .. keys-1`` with Zipf(s) popularity.

    Unlike ``numpy``'s unbounded ``zipf``, the keyspace is finite (a cache
    hit rate over an infinite keyspace is meaningless), so the probability
    mass function is normalised explicitly and sampled by inverse CDF.
    """

    def __init__(self, keys: int, exponent: float, rng: np.random.Generator) -> None:
        if keys < 1:
            raise ConfigurationError(f"keyspace must hold >= 1 key, got {keys}")
        if exponent < 0:
            raise ConfigurationError(f"zipf exponent must be >= 0, got {exponent}")
        self.keys = int(keys)
        self.exponent = float(exponent)
        self._rng = rng
        ranks = np.arange(1, self.keys + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        self._cdf = np.cumsum(weights / weights.sum())

    def sample(self) -> int:
        """One key draw; key 0 is the most popular."""
        idx = int(np.searchsorted(self._cdf, self._rng.random(), side="right"))
        return min(idx, self.keys - 1)

    def hot_fraction(self, top: int) -> float:
        """Probability mass on the ``top`` most popular keys (diagnostics)."""
        if top < 1:
            return 0.0
        return float(self._cdf[min(top, self.keys) - 1])
