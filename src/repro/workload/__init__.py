"""Workload generation: servlet catalogue, closed-loop clients, traces.

Mirrors the paper's three generators — JMeter (fixed concurrency, zero
think time), the original RUBBoS client (static users, 3 s think time), and
the revised trace-driven emulator — plus trace builders and burstiness
tooling.
"""

from repro.workload.burstiness import (
    arrival_counts,
    burstiness_profile,
    index_of_dispersion,
    mmpp2_trace,
)
from repro.workload.batched import DEFAULT_BATCHES, BatchedPopulation
from repro.workload.jmeter import JMeterGenerator
from repro.workload.keys import ZipfKeySampler
from repro.workload.rubbos import DEFAULT_THINK_TIME, RubbosGenerator
from repro.workload.servlets import (
    MYSQL_MEAN_DEMAND,
    TOMCAT_MEAN_DEMAND,
    Servlet,
    ServletCatalog,
    browse_only_catalog,
    read_write_catalog,
)
from repro.workload.session import UserSession
from repro.workload.traced import TraceDrivenGenerator
from repro.workload.traces import (
    WorkloadTrace,
    large_variation,
    sine_trace,
    spike_trace,
    step_trace,
)

__all__ = [
    "BatchedPopulation",
    "DEFAULT_BATCHES",
    "DEFAULT_THINK_TIME",
    "JMeterGenerator",
    "MYSQL_MEAN_DEMAND",
    "RubbosGenerator",
    "Servlet",
    "ServletCatalog",
    "TOMCAT_MEAN_DEMAND",
    "TraceDrivenGenerator",
    "UserSession",
    "WorkloadTrace",
    "ZipfKeySampler",
    "arrival_counts",
    "browse_only_catalog",
    "read_write_catalog",
    "burstiness_profile",
    "index_of_dispersion",
    "large_variation",
    "mmpp2_trace",
    "sine_trace",
    "spike_trace",
    "step_trace",
]
