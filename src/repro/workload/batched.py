"""Batched closed-loop user populations for million-user scale.

:class:`~repro.workload.rubbos.RubbosGenerator` keeps one live generator
process per emulated user, so a "Large Variation" trace at 10⁶ users would
hold a million suspended generators (and their queue placeholders) at once —
the blocker named by ROADMAP item 1.  :class:`BatchedPopulation` collapses N
statistically-identical users into a handful of *batches*, each driven by a
single aggregate arrival clock and plain integer counters.  No per-user
process exists at all; the only generators are the in-flight requests the
n-tier system itself creates.

Why the aggregation is exact (in distribution)
----------------------------------------------
Each emulated user cycles think → request → wait (see
:class:`~repro.workload.session.UserSession`) with Exp(Z) think times.  For a
batch with ``m`` users currently thinking, the time to the *next* request is
the minimum of ``m`` i.i.d. Exp(Z) clocks — itself Exp(Z/m) — so one draw
from Exp(Z/m) reproduces the aggregate arrival process.  When ``m`` changes
(an arrival fires, a request completes, the trace retargets the population),
memorylessness says the residual think times are again i.i.d. Exp(Z), so the
clock is simply *redrawn* at the new rate; the superseded draw is invalidated
by an epoch counter rather than cancelled.  Both steps are distribution-
preserving, so per-batch request streams are exactly those of ``m`` discrete
thinkers — only user *identity* within a batch is erased.  Each batch owns a
named RNG stream, making runs reproducible and batches independent.

The optional materialisation ``window`` caps how many requests per batch are
*live* inside the system at once; arrivals beyond it wait in an O(1) backlog
counter and materialise as slots free.  With the tiers saturated (the only
regime where the backlog grows), throughput is capacity-bound and admission
is FIFO, so this changes queue *bookkeeping*, not served traffic — it exists
to bound live-process memory at extreme populations.  ``window=None``
(default) materialises every arrival immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workload.rubbos import DEFAULT_THINK_TIME

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment

#: Default number of independent aggregate arrival processes.  A few batches
#: keep the arrival stream statistically rich (independent clocks) while the
#: per-event cost stays O(1) in the population size.
DEFAULT_BATCHES = 8


class _Batch:
    """Counters for one aggregate arrival process (no per-user state)."""

    __slots__ = ("rng", "thinking", "inflight", "backlog", "retiring", "epoch")

    def __init__(self, rng) -> None:
        self.rng = rng
        self.thinking = 0   # users between requests (the aggregate clock's m)
        self.inflight = 0   # users with a materialised request in the system
        self.backlog = 0    # users whose arrival awaits a window slot
        self.retiring = 0   # users leaving once their current request resolves
        self.epoch = 0      # invalidates superseded think-clock draws

    @property
    def population(self) -> int:
        return self.thinking + self.inflight + self.backlog - self.retiring


class BatchedPopulation:
    """N statistically-identical closed-loop users as batched arrival clocks.

    Drop-in for :class:`~repro.workload.rubbos.RubbosGenerator` wherever only
    the population API (``users`` / ``set_users`` / ``stop`` /
    ``user_history``) is consumed — in particular under
    :class:`~repro.workload.traced.TraceDrivenGenerator`.

    Parameters
    ----------
    env, system:
        Environment and target system.
    users:
        Initial population (may be 0; grown later via :meth:`set_users`).
    think_time:
        Mean exponential think time; must be positive (a zero-think closed
        loop has no aggregate clock to batch — use
        :class:`~repro.workload.jmeter.JMeterGenerator` for that regime).
    streams:
        Random streams; batch ``i`` draws from ``workload.batch.{i}.think``.
    batches:
        Number of independent aggregate arrival processes.
    window:
        Per-batch cap on simultaneously materialised requests (see module
        docstring); ``None`` disables the cap.
    """

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        users: int = 0,
        think_time: float = DEFAULT_THINK_TIME,
        streams: Optional[RandomStreams] = None,
        batches: int = DEFAULT_BATCHES,
        window: Optional[int] = None,
    ) -> None:
        if users < 0:
            raise ConfigurationError(f"users must be >= 0, got {users}")
        if think_time <= 0:
            raise ConfigurationError(
                "BatchedPopulation requires positive think time"
            )
        if batches < 1:
            raise ConfigurationError(f"batches must be >= 1, got {batches}")
        if window is not None and window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.env = env
        self.system = system
        self.think_time = float(think_time)
        self.window = window
        self.streams = streams or system.streams
        self._batches: List[_Batch] = [
            _Batch(self.streams.stream(f"workload.batch.{i}.think"))
            for i in range(batches)
        ]
        self._user_history: List[Tuple[float, int]] = []
        self.requests_issued = 0
        if users:
            self.set_users(users)

    # -- population control ---------------------------------------------------------
    @property
    def users(self) -> int:
        """Current population size across all batches."""
        return sum(b.population for b in self._batches)

    @property
    def user_history(self) -> List[Tuple[float, int]]:
        """``(time, users)`` samples recorded at every population change."""
        return list(self._user_history)

    @property
    def outstanding(self) -> int:
        """Requests issued-but-unresolved (materialised + backlogged)."""
        return sum(b.inflight + b.backlog for b in self._batches)

    def set_users(self, target: int) -> None:
        """Grow or shrink the population to ``target`` users.

        Growth adds thinkers (their first request follows a fresh think
        draw, the batched analogue of staggered session start-up); shrinkage
        removes thinkers first and marks the remainder to retire when their
        in-flight request resolves — users never abandon a request, matching
        :meth:`UserSession.stop`.
        """
        if target < 0:
            raise ConfigurationError(f"target users must be >= 0, got {target}")
        nbatches = len(self._batches)
        base, extra = divmod(target, nbatches)
        for i, batch in enumerate(self._batches):
            delta = (base + (1 if i < extra else 0)) - batch.population
            if delta > 0:
                # Re-hire retirees before admitting new thinkers so the
                # population counter stays exact under rapid retargeting.
                rehired = min(delta, batch.retiring)
                batch.retiring -= rehired
                batch.thinking += delta - rehired
            elif delta < 0:
                drop = min(-delta, batch.thinking)
                batch.thinking -= drop
                batch.retiring += (-delta) - drop
            if delta:
                self._rearm(batch)
        self._user_history.append((self.env.now, target))

    def stop(self) -> None:
        """Gracefully stop the whole population."""
        self.set_users(0)

    # -- the aggregate clock ----------------------------------------------------------
    def _rearm(self, batch: _Batch) -> None:
        """(Re)draw the batch's single think clock at the current rate."""
        batch.epoch += 1
        m = batch.thinking
        if m <= 0:
            return
        delay = float(batch.rng.exponential(self.think_time / m))
        timer = self.env.timeout(delay)
        timer.callbacks.append(
            lambda _event, b=batch, e=batch.epoch: self._fire(b, e)
        )

    def _fire(self, batch: _Batch, epoch: int) -> None:
        if epoch != batch.epoch or batch.thinking <= 0:
            return  # superseded draw: the state it was armed for is gone
        batch.thinking -= 1
        if self.window is None or batch.inflight < self.window:
            self._dispatch(batch)
        else:
            batch.backlog += 1
        self._rearm(batch)

    def _dispatch(self, batch: _Batch) -> None:
        batch.inflight += 1
        self.requests_issued += 1
        _request, done = self.system.submit()
        done.callbacks.append(lambda _event, b=batch: self._complete(b))

    def _complete(self, batch: _Batch) -> None:
        batch.inflight -= 1
        if batch.backlog > 0 and (
            self.window is None or batch.inflight < self.window
        ):
            batch.backlog -= 1
            self._dispatch(batch)
        if batch.retiring > 0:
            batch.retiring -= 1
        else:
            batch.thinking += 1
            self._rearm(batch)
