"""RUBBoS client emulator: realistic closed-loop users with think time.

The original RUBBoS workload generator simulates a *static* number of
concurrent users, each with an average 3-second think time between
consecutive requests (Section II-A / V-A).  :class:`RubbosGenerator` manages
such a population and additionally supports changing the population size at
runtime — the primitive on which the revised, trace-driven emulator
(:mod:`repro.workload.traced`) is built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workload.session import UserSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment

#: The RUBBoS clients' average think time (seconds).
DEFAULT_THINK_TIME = 3.0


class RubbosGenerator:
    """A dynamically resizable population of thinking users.

    Parameters
    ----------
    env, system:
        Environment and target system.
    users:
        Initial population size (may be 0; grown later via :meth:`set_users`).
    think_time:
        Mean exponential think time, default 3 s as in RUBBoS.
    streams:
        Random streams (uses ``workload.think`` and ``workload.stagger``).
    stagger:
        New sessions start after a uniform random delay in ``[0, stagger]``
        so population changes do not synchronise request waves.
    """

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        users: int = 0,
        think_time: float = DEFAULT_THINK_TIME,
        streams: RandomStreams | None = None,
        stagger: float = 1.0,
    ) -> None:
        if users < 0:
            raise ConfigurationError(f"users must be >= 0, got {users}")
        if think_time <= 0:
            raise ConfigurationError("RubbosGenerator requires positive think time")
        self.env = env
        self.system = system
        self.think_time = think_time
        self.stagger = stagger
        self.streams = streams or system.streams
        self._think_rng = self.streams.stream("workload.think")
        self._stagger_rng = self.streams.stream("workload.stagger")
        self._active: List[UserSession] = []
        self._user_history: List[tuple[float, int]] = []
        if users:
            self.set_users(users)

    # -- population control ---------------------------------------------------------
    @property
    def users(self) -> int:
        """Current target population size."""
        return len(self._active)

    @property
    def user_history(self) -> List[tuple[float, int]]:
        """``(time, users)`` samples recorded at every population change."""
        return list(self._user_history)

    def set_users(self, target: int) -> None:
        """Grow or shrink the population to ``target`` users.

        Growth spawns staggered new sessions; shrinkage gracefully stops the
        most recently added sessions (they finish any in-flight request).
        """
        if target < 0:
            raise ConfigurationError(f"target users must be >= 0, got {target}")
        while len(self._active) < target:
            delay = float(self._stagger_rng.uniform(0.0, self.stagger)) if self.stagger else 0.0
            session = UserSession(
                self.env,
                self.system,
                think_time=self.think_time,
                think_rng=self._think_rng,
                initial_delay=delay,
            )
            session.start()
            self._active.append(session)
        while len(self._active) > target:
            self._active.pop().stop()
        self._user_history.append((self.env.now, target))

    def stop(self) -> None:
        """Gracefully stop the whole population."""
        self.set_users(0)
