"""The RUBBoS servlet catalogue and workload mixes.

RUBBoS (the paper's benchmark, a Slashdot-like bulletin board) exposes 24
servlets.  The paper uses the *CPU-intensive browse-only* mix.  We model all
24 with per-servlet CPU demands for each tier and per-servlet DB query
counts; a :class:`ServletCatalog` bundles the servlets with mix weights and
handles demand sampling.

Calibration
-----------
The browse-only mix is normalised so that its weighted-mean demands hit the
targets implied by the paper's Table I (see DESIGN.md §2):

* mean Tomcat demand per request  = ``S0_tomcat / gamma_tomcat``  = 2.5748 ms
* mean total MySQL demand per request = ``S0_mysql / gamma_mysql`` = 1.6157 ms

so that with the ground-truth contention laws the Tomcat tier peaks at
~946 req/s at concurrency 20 and the MySQL tier at ~865 req/s at
concurrency 36 — the paper's measured values.  Relative differences between
servlets are preserved by the normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ntier.contention import MYSQL_CONTENTION, TOMCAT_CONTENTION
from repro.ntier.request import DemandProfile

#: Calibration targets (seconds) — Table I values divided by gamma.
TOMCAT_MEAN_DEMAND = TOMCAT_CONTENTION.s0 / 11.03
MYSQL_MEAN_DEMAND = MYSQL_CONTENTION.s0 / 4.45

#: Supported per-request demand distributions.
DISTRIBUTIONS = ("deterministic", "exponential")


@dataclass(frozen=True)
class Servlet:
    """One RUBBoS servlet: its identity and mean resource demands.

    ``db_query_demands`` holds the mean CPU demand of each individual query
    the servlet issues to MySQL (so both the *number* of interactions and
    their sizes are modelled — the paper's "an HTTP request may trigger
    multiple interactions").
    """

    name: str
    category: str  # "browse" or "write"
    apache_demand: float
    tomcat_demand: float
    db_query_demands: Tuple[float, ...]

    @property
    def db_queries(self) -> int:
        """Number of MySQL queries this servlet issues."""
        return len(self.db_query_demands)

    @property
    def db_total_demand(self) -> float:
        """Mean total MySQL demand per request."""
        return float(sum(self.db_query_demands))

    def sample_demand(
        self, rng: np.random.Generator, distribution: str = "exponential"
    ) -> DemandProfile:
        """Draw one request's demands from this servlet's distributions."""
        if distribution == "deterministic":
            return DemandProfile(
                apache=self.apache_demand,
                tomcat=self.tomcat_demand,
                db_queries=self.db_query_demands,
            )
        if distribution == "exponential":
            return DemandProfile(
                apache=float(rng.exponential(self.apache_demand)),
                tomcat=float(rng.exponential(self.tomcat_demand)),
                db_queries=tuple(float(rng.exponential(d)) for d in self.db_query_demands),
            )
        raise ConfigurationError(
            f"unknown demand distribution {distribution!r}; pick from {DISTRIBUTIONS}"
        )


# ---------------------------------------------------------------------------
# The 24 RUBBoS servlets.  Demands are *relative* shapes (milliseconds-ish);
# browse-only weights follow the RUBBoS browse transition mix.  The catalogue
# constructor rescales demands to the calibration targets above.
# ---------------------------------------------------------------------------

# name, category, apache, tomcat, per-query db demands, browse-mix weight
_RAW_SERVLETS: Sequence[tuple] = (
    ("StoriesOfTheDay",          "browse", 0.20e-3, 2.0e-3, (0.55e-3, 0.65e-3), 0.200),
    ("ViewStory",                "browse", 0.20e-3, 2.2e-3, (0.90e-3, 0.85e-3), 0.250),
    ("ViewComment",              "browse", 0.20e-3, 2.4e-3, (0.80e-3, 0.75e-3), 0.150),
    ("BrowseCategories",         "browse", 0.15e-3, 1.8e-3, (0.70e-3,), 0.080),
    ("BrowseStoriesByCategory",  "browse", 0.20e-3, 3.0e-3, (0.95e-3, 0.85e-3), 0.120),
    ("OlderStories",             "browse", 0.20e-3, 3.2e-3, (0.85e-3, 0.75e-3), 0.060),
    ("SearchInStories",          "browse", 0.25e-3, 4.0e-3, (0.95e-3, 0.90e-3, 0.85e-3), 0.080),
    ("SearchInComments",         "browse", 0.25e-3, 4.5e-3, (1.05e-3, 1.00e-3, 0.95e-3), 0.030),
    ("SearchInUsers",            "browse", 0.20e-3, 3.5e-3, (0.80e-3, 0.75e-3), 0.020),
    ("AboutMe",                  "browse", 0.20e-3, 3.0e-3, (0.80e-3, 0.75e-3, 0.70e-3), 0.010),
    # Write/interaction servlets: present in the catalogue (used by the
    # read-write extension mix) but weight 0 in the browse-only mix.
    ("StoreStory",               "write", 0.25e-3, 3.5e-3, (1.20e-3, 1.00e-3, 0.90e-3), 0.0),
    ("SubmitStory",              "write", 0.20e-3, 2.0e-3, (0.60e-3,), 0.0),
    ("StoreComment",             "write", 0.25e-3, 3.2e-3, (1.10e-3, 0.95e-3), 0.0),
    ("PostComment",              "write", 0.20e-3, 2.0e-3, (0.60e-3,), 0.0),
    ("RegisterUser",             "write", 0.20e-3, 2.5e-3, (0.90e-3, 0.80e-3), 0.0),
    ("BrowseStoriesByDate",      "browse", 0.20e-3, 3.0e-3, (0.90e-3, 0.80e-3), 0.0),
    ("Author",                   "write", 0.20e-3, 2.2e-3, (0.75e-3,), 0.0),
    ("AuthorTasks",              "write", 0.20e-3, 2.8e-3, (0.85e-3, 0.80e-3), 0.0),
    ("ReviewStories",            "write", 0.25e-3, 3.6e-3, (1.00e-3, 0.95e-3), 0.0),
    ("AcceptStory",              "write", 0.20e-3, 2.4e-3, (0.90e-3, 0.85e-3), 0.0),
    ("RejectStory",              "write", 0.20e-3, 2.2e-3, (0.85e-3,), 0.0),
    ("ModerateComment",          "write", 0.20e-3, 2.6e-3, (0.80e-3, 0.75e-3), 0.0),
    ("StoreModeratorLog",        "write", 0.20e-3, 2.4e-3, (0.95e-3, 0.85e-3), 0.0),
    ("ViewUserInfo",             "browse", 0.20e-3, 2.4e-3, (0.80e-3, 0.70e-3), 0.0),
)


class ServletCatalog:
    """A set of servlets plus a request mix, with calibrated demands.

    Parameters
    ----------
    servlets:
        The servlets in the application.
    mix:
        Mapping servlet name -> probability (must sum to 1 over the names it
        contains; names absent from the mapping have probability 0).
    demand_distribution:
        ``"exponential"`` (realistic variability, default) or
        ``"deterministic"``.
    demand_scale:
        Multiplies *all* demands.  >1 slows every tier down proportionally —
        optimal concurrencies are unchanged (they depend only on the
        contention law) while capacities scale by ``1/demand_scale``; used to
        run large experiments faster at reduced request volume.
    """

    def __init__(
        self,
        servlets: Sequence[Servlet],
        mix: Dict[str, float],
        demand_distribution: str = "exponential",
        demand_scale: float = 1.0,
    ) -> None:
        if demand_distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown demand distribution {demand_distribution!r}"
            )
        if demand_scale <= 0:
            raise ConfigurationError(f"demand_scale must be > 0, got {demand_scale}")
        by_name = {s.name: s for s in servlets}
        if len(by_name) != len(servlets):
            raise ConfigurationError("duplicate servlet names in catalogue")
        unknown = set(mix) - set(by_name)
        if unknown:
            raise ConfigurationError(f"mix references unknown servlets: {sorted(unknown)}")
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"mix probabilities sum to {total}, expected 1")
        if any(p < 0 for p in mix.values()):
            raise ConfigurationError("mix probabilities must be non-negative")

        self.servlets: Tuple[Servlet, ...] = tuple(
            replace(
                s,
                apache_demand=s.apache_demand * demand_scale,
                tomcat_demand=s.tomcat_demand * demand_scale,
                db_query_demands=tuple(d * demand_scale for d in s.db_query_demands),
            )
            for s in servlets
        )
        self._by_name = {s.name: s for s in self.servlets}
        self.demand_distribution = demand_distribution
        self.demand_scale = demand_scale
        self._mix_names = tuple(n for n, p in mix.items() if p > 0)
        self._mix_probs = np.array([mix[n] for n in self._mix_names], dtype=float)
        self._mix_probs /= self._mix_probs.sum()
        self._mix_cum = np.cumsum(self._mix_probs)
        self._mix_servlets = tuple(self._by_name[n] for n in self._mix_names)

    # -- lookup -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.servlets)

    def __getitem__(self, name: str) -> Servlet:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"no servlet named {name!r}") from None

    # -- sampling ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Servlet:
        """Draw one servlet according to the mix."""
        idx = int(np.searchsorted(self._mix_cum, rng.random(), side="right"))
        return self._mix_servlets[min(idx, len(self._mix_servlets) - 1)]

    def sample_request_demand(
        self, rng: np.random.Generator
    ) -> tuple[Servlet, DemandProfile]:
        """Draw a servlet and its request demands in one call."""
        servlet = self.sample(rng)
        return servlet, servlet.sample_demand(rng, self.demand_distribution)

    # -- aggregate workload characteristics ------------------------------------------
    def mean_demands(self) -> Dict[str, float]:
        """Mix-weighted mean demands per HTTP request (seconds)."""
        apache = tomcat = db = queries = 0.0
        for servlet, p in zip(self._mix_servlets, self._mix_probs):
            apache += p * servlet.apache_demand
            tomcat += p * servlet.tomcat_demand
            db += p * servlet.db_total_demand
            queries += p * servlet.db_queries
        return {
            "apache": apache,
            "tomcat": tomcat,
            "db_total": db,
            "db_queries": queries,
        }

    def visit_ratios(self) -> Dict[str, float]:
        """The paper's V_m: mean visits per HTTP request at each tier."""
        return {"web": 1.0, "app": 1.0, "db": self.mean_demands()["db_queries"]}


def read_write_catalog(
    write_fraction: float = 0.15,
    demand_distribution: str = "exponential",
    demand_scale: float = 1.0,
) -> ServletCatalog:
    """An extension mix: RUBBoS browse traffic plus write interactions.

    The paper evaluates the CPU-intensive browse-only mix; RUBBoS also ships
    a "submission" mix with ~15 % write interactions (story/comment posts,
    moderation).  This catalogue blends the browse mix with the write
    servlets at ``write_fraction``, keeping the same demand calibration for
    the browse portion.

    Scope note: multiple MySQL servers are treated as multi-master (every
    server accepts every query).  Replication lag and primary-only write
    routing are out of scope — this mix exists to study *load shapes*, not
    consistency.
    """
    if not 0.0 <= write_fraction < 1.0:
        raise ConfigurationError(
            f"write_fraction must be in [0, 1), got {write_fraction}"
        )
    browse_weights = {
        name: weight for (name, _c, _a, _t, _q, weight) in _RAW_SERVLETS if weight > 0
    }
    write_names = [
        name for (name, category, _a, _t, _q, _w) in _RAW_SERVLETS
        if category == "write"
    ]
    mix: Dict[str, float] = {
        name: w * (1.0 - write_fraction) for name, w in browse_weights.items()
    }
    if write_fraction > 0:
        per_write = write_fraction / len(write_names)
        for name in write_names:
            mix[name] = mix.get(name, 0.0) + per_write
    return browse_only_catalog(
        demand_distribution=demand_distribution,
        demand_scale=demand_scale,
        mix_overrides=mix,
    )


def browse_only_catalog(
    demand_distribution: str = "exponential",
    demand_scale: float = 1.0,
    mix_overrides: Optional[Dict[str, float]] = None,
) -> ServletCatalog:
    """The paper's CPU-intensive browse-only workload, calibrated to Table I.

    Demands are normalised so the browse-mix means equal
    :data:`TOMCAT_MEAN_DEMAND` and :data:`MYSQL_MEAN_DEMAND` exactly, making
    the ground-truth tier capacity curves match the paper's.
    """
    mix = {name: weight for (name, _c, _a, _t, _q, weight) in _RAW_SERVLETS if weight > 0}
    if mix_overrides is not None:
        mix = dict(mix_overrides)
    raw = [
        Servlet(name, category, a, t, tuple(q), )
        for (name, category, a, t, q, _w) in _RAW_SERVLETS
    ]
    # Normalise demands against the (possibly overridden) mix.
    total = sum(mix.values())
    mix = {n: p / total for n, p in mix.items()}
    by_name = {s.name: s for s in raw}
    mean_tomcat = sum(p * by_name[n].tomcat_demand for n, p in mix.items())
    mean_db = sum(p * by_name[n].db_total_demand for n, p in mix.items())
    tomcat_factor = TOMCAT_MEAN_DEMAND / mean_tomcat
    db_factor = MYSQL_MEAN_DEMAND / mean_db
    calibrated = [
        replace(
            s,
            tomcat_demand=s.tomcat_demand * tomcat_factor,
            db_query_demands=tuple(d * db_factor for d in s.db_query_demands),
        )
        for s in raw
    ]
    return ServletCatalog(
        calibrated,
        mix,
        demand_distribution=demand_distribution,
        demand_scale=demand_scale,
    )
