"""Closed-loop user sessions.

All three of the paper's workload generators (JMeter, the original RUBBoS
client, and the revised trace-driven emulator) are *closed loops*: each
emulated user thinks, issues one request, waits for the response, and
repeats.  :class:`UserSession` implements one such user; the generators in
the sibling modules manage populations of sessions.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ntier.topology import NTierSystem
    from repro.sim.core import Environment
    from repro.sim.events import Process

_session_ids = itertools.count(1)


class UserSession:
    """One emulated user running a think/request loop against the system.

    Parameters
    ----------
    env, system:
        Environment and target system.
    think_time:
        Mean think time between consecutive requests (seconds).  ``0`` means
        no think time (JMeter-style maximal pressure).  Positive values draw
        exponentially-distributed think times (the RUBBoS clients' average
        3-second think time).
    think_rng:
        Generator for think-time draws.
    initial_delay:
        Fixed delay before the first request — used to stagger session
        start-up so populations do not fire in lock-step.
    """

    def __init__(
        self,
        env: "Environment",
        system: "NTierSystem",
        think_time: float = 0.0,
        think_rng: Optional[np.random.Generator] = None,
        initial_delay: float = 0.0,
    ) -> None:
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        if think_time > 0 and think_rng is None:
            raise ConfigurationError("positive think_time requires a think_rng")
        self.env = env
        self.system = system
        self.think_time = think_time
        self.initial_delay = initial_delay
        self._rng = think_rng
        self.session_id = next(_session_ids)
        self.requests_issued = 0
        self._running = False
        self._process: Optional["Process"] = None

    # -- lifecycle -----------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the session loop is active."""
        return self._running

    def start(self) -> "Process":
        """Begin the think/request loop."""
        if self._running:
            raise ConfigurationError("session already running")
        self._running = True
        self._process = self.env.process(self._run())
        return self._process

    def stop(self) -> None:
        """Gracefully stop: the session exits at its next loop boundary
        (it never abandons an in-flight request, matching the paper's
        client emulator when the trace's user count drops)."""
        self._running = False

    # -- the loop --------------------------------------------------------------------
    def _run(self):
        if self.initial_delay > 0:
            yield self.env.timeout(self.initial_delay)
        while self._running:
            if self.think_time > 0:
                yield self.env.timeout(self._rng.exponential(self.think_time))
                if not self._running:
                    break
            _request, done = self.system.submit()
            self.requests_issued += 1
            yield done
        return self.requests_issued
