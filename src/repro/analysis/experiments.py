"""High-level experiment runners shared by benchmarks and examples.

Each paper artefact (Fig 2a/2b, Table I, Fig 4a/4b, Fig 5) maps to one
experiment; since the engine redesign the canonical entry point is a
frozen spec dataclass executed by :func:`repro.runner.run` (parallel
fan-out + spec-keyed result caching; see DESIGN.md §3 "Experiment
engine").  This module keeps

* result dataclasses the engine's point functions and reducers use
  (the building blocks themselves now live in the scenario layer:
  :func:`repro.scenario.build_system`,
  :func:`repro.scenario.measure_steady_state` — re-exported here so
  historical imports keep working), and
* thin **deprecated** wrappers with the historical signatures
  (``stress_tier_sweep``, ``jmeter_sweep``, ``train_tier_model``,
  ``validation_curves``, ``run_autoscale_experiment``) so existing scripts
  keep working; they emit :class:`DeprecationWarning` and delegate to the
  engine with ``jobs=1, cache=False`` — bit-identical to the old serial
  behaviour.  **These five wrappers are scheduled for removal in the next
  release** — nothing inside the repo imports them any more; build the
  corresponding :mod:`repro.runner` spec and call ``repro.runner.run``
  instead.

Runners are deterministic given a seed and support ``demand_scale`` — a
speed knob that multiplies all CPU demands (capacities shrink by the same
factor, optimal concurrencies are *unchanged* because they depend only on
the contention law; see DESIGN.md §2).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import Hypervisor
from repro.control import AppAgent, ScalingPolicy, VMAgent
from repro.errors import ConfigurationError
from repro.model import (
    ConcurrencyModel,
    FitResult,
)
from repro.monitor import MetricCollector
from repro.ntier import (
    HardwareConfig,
    NTierSystem,
    SoftResourceConfig,
)
from repro.runner.specs import DB_TRAINING_LEVELS, TRAINING_LEVELS  # noqa: F401
from repro.scenario import (  # noqa: F401
    Deployment,
    ScenarioSpec,
    SteadyState,
    build_system,
    measure_steady_state,
)
from repro.workload import TraceDrivenGenerator, WorkloadTrace
from repro.workload.servlets import Servlet, ServletCatalog


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old}() is deprecated; build a spec and call {new} instead "
        "(the engine adds --jobs parallelism and result caching)",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------
#
# ``build_system``, ``SteadyState``, and ``measure_steady_state`` now live
# in the scenario layer (the composition root measures what it builds);
# they are re-imported above so every historical ``from
# repro.analysis.experiments import measure_steady_state`` keeps working.


# ---------------------------------------------------------------------------
# Fig 2(a): direct tier stress with controlled concurrency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StressPoint:
    """One point of a direct-stress sweep."""

    target_concurrency: int
    measured_concurrency: float
    throughput: float  # HTTP-equivalent requests/s


def _stress_servlet(catalog: ServletCatalog, tier: str) -> Tuple[Servlet, float]:
    """A synthetic single-tier servlet matching the mix's mean demands.

    Returns the servlet and the visit ratio used to normalise throughput to
    HTTP-equivalents.
    """
    means = catalog.mean_demands()
    if tier == "db":
        queries = means["db_queries"]
        per_query = means["db_total"] / queries
        return (
            Servlet("StressQuery", "browse", 0.0, 0.0, (per_query,)),
            queries,
        )
    if tier == "app":
        return Servlet("StressServlet", "browse", 0.0, means["tomcat"], ()), 1.0
    raise ConfigurationError(f"unsupported stress tier {tier!r}")


def stress_tier_sweep(
    tier: str,
    concurrencies: Sequence[int],
    seed: int = 0,
    demand_scale: float = 1.0,
    warmup: float = 3.0,
    duration: float = 15.0,
    demand_distribution: str = "exponential",
) -> List[StressPoint]:
    """The paper's Section II-B experiment: stress one server type with a
    matched thread pool at each concurrency level (Fig 2(a)).

    .. deprecated:: 1.0
       Build a :class:`repro.runner.StressSpec` and call
       :func:`repro.runner.run` instead.
    """
    from repro.runner import StressSpec, run

    spec = StressSpec(
        tier=tier,
        concurrencies=tuple(concurrencies),
        seed=seed,
        demand_scale=demand_scale,
        warmup=warmup,
        duration=duration,
        demand_distribution=demand_distribution,
    )
    _warn_deprecated("stress_tier_sweep", "repro.runner.run(StressSpec(...))")
    return run(spec, jobs=1, cache=False).value


# ---------------------------------------------------------------------------
# JMeter sweeps and model training (Table I)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One JMeter operating point against the full system."""

    users: int
    steady: SteadyState


def jmeter_sweep(
    users_levels: Sequence[int],
    hardware: HardwareConfig = HardwareConfig(1, 1, 1),
    soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
    seed: int = 0,
    demand_scale: float = 1.0,
    warmup: float = 4.0,
    duration: float = 12.0,
    imbalance: float = 0.05,
) -> List[SweepPoint]:
    """Run the full system at each fixed JMeter concurrency level.

    .. deprecated:: 1.0
       Build a :class:`repro.runner.SweepSpec` and call
       :func:`repro.runner.run` instead.
    """
    from repro.runner import SweepSpec, run

    spec = SweepSpec(
        users_levels=tuple(users_levels),
        hardware=hardware,
        soft=soft,
        workload="jmeter",
        seed=seed,
        demand_scale=demand_scale,
        warmup=warmup,
        duration=duration,
        imbalance=imbalance,
    )
    _warn_deprecated("jmeter_sweep", "repro.runner.run(SweepSpec(...))")
    return run(spec, jobs=1, cache=False).value


@dataclass(frozen=True)
class TrainingOutcome:
    """Everything the Table I row for one tier needs."""

    tier: str
    fit: FitResult
    samples: List[Tuple[float, float]]

    @property
    def model(self) -> ConcurrencyModel:
        """The fitted model."""
        return self.fit.model


def train_tier_model(
    tier: str,
    seed: int = 0,
    demand_scale: float = 1.0,
    levels: Optional[Sequence[int]] = None,
    warmup: float = 4.0,
    duration: float = 24.0,
) -> TrainingOutcome:
    """Reproduce the paper's model-training procedure (Section V-A).

    Tomcat: 1/1/1 under the default soft allocation — the app tier is the
    operative bottleneck.  MySQL: 1/2/1 so the DB tier saturates first.  At
    each JMeter level the *measured* bottleneck-tier concurrency and the
    system throughput form one training pair; Eq (7) is then least-squares
    fitted (see :meth:`repro.runner.TrainingSpec.reduce`).

    .. deprecated:: 1.0
       Build a :class:`repro.runner.TrainingSpec` and call
       :func:`repro.runner.run` instead.
    """
    from repro.runner import TrainingSpec, run

    spec = TrainingSpec(
        tier=tier,
        seed=seed,
        demand_scale=demand_scale,
        levels=None if levels is None else tuple(levels),
        warmup=warmup,
        duration=duration,
    )
    _warn_deprecated("train_tier_model", "repro.runner.run(TrainingSpec(...))")
    return run(spec, jobs=1, cache=False).value


def hardware_count(hardware: HardwareConfig, tier: str) -> int:
    """Server count of ``tier`` in a hardware config."""
    return {"web": hardware.web, "app": hardware.app, "db": hardware.db}[tier]


_MODEL_CACHE: Dict[Tuple[float, int], Dict[str, ConcurrencyModel]] = {}


def trained_models(
    demand_scale: float = 1.0, seed: int = 0
) -> Dict[str, ConcurrencyModel]:
    """Offline-trained models per tier, cached per (scale, seed).

    This is what DCM seeds its online estimator with — the paper trains
    with JMeter before the autoscaling runs.
    """
    from repro.runner import TrainingSpec, run

    key = (demand_scale, seed)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = {
            tier: run(
                TrainingSpec(tier=tier, seed=seed, demand_scale=demand_scale),
                jobs=1,
                cache=False,
            ).value.model
            for tier in ("app", "db")
        }
    return _MODEL_CACHE[key]


# ---------------------------------------------------------------------------
# Fig 4: validation under realistic RUBBoS workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ValidationCurve:
    """Throughput-vs-users curve for one soft allocation."""

    soft: SoftResourceConfig
    users: Tuple[int, ...]
    throughput: Tuple[float, ...]
    mean_response_time: Tuple[float, ...]

    @property
    def peak_throughput(self) -> float:
        """Best sustained throughput across the user ramp."""
        return max(self.throughput)


def validation_curves(
    hardware: HardwareConfig,
    soft_configs: Sequence[SoftResourceConfig],
    user_levels: Sequence[int],
    seed: int = 0,
    demand_scale: float = 1.0,
    think_time: float = 3.0,
    warmup: float = 5.0,
    duration: float = 20.0,
    imbalance: float = 0.05,
) -> List[ValidationCurve]:
    """The Fig 4 experiment: same hardware, several soft allocations, a
    ramp of RUBBoS users (3 s think time); who sustains the most throughput?

    .. deprecated:: 1.0
       Build a :class:`repro.runner.ValidationSpec` and call
       :func:`repro.runner.run` instead.
    """
    from repro.runner import ValidationSpec, run

    spec = ValidationSpec(
        hardware=hardware,
        soft_configs=tuple(soft_configs),
        user_levels=tuple(user_levels),
        seed=seed,
        demand_scale=demand_scale,
        think_time=think_time,
        warmup=warmup,
        duration=duration,
        imbalance=imbalance,
    )
    _warn_deprecated("validation_curves", "repro.runner.run(ValidationSpec(...))")
    return run(spec, jobs=1, cache=False).value


# ---------------------------------------------------------------------------
# Fig 5: DCM vs EC2-AutoScale under a bursty trace
# ---------------------------------------------------------------------------

@dataclass
class AutoscaleRun:
    """Everything captured from one autoscaling experiment."""

    controller_name: str
    duration: float
    system: NTierSystem
    controller: object
    collector: MetricCollector
    hypervisor: Hypervisor
    vm_agent: VMAgent
    app_agent: Optional[AppAgent]
    trace_gen: TraceDrivenGenerator
    request_log: List[Tuple[float, float]] = field(default_factory=list)
    failed: int = 0

    @property
    def vm_seconds(self) -> float:
        """Billed VM-seconds up to the end of the run."""
        return self.hypervisor.billing.vm_seconds(self.duration)

    def tier_vm_timeline(self, tier: str) -> List[Tuple[float, int]]:
        """(time, server count) change points for ``tier``."""
        return self.controller.scaling_timeline(tier)

    def records(self, tier: str) -> List:
        """All retained metric records for ``tier``, time-sorted."""
        rows = []
        for name in self.collector.servers(tier):
            rows.extend(self.collector.recent(name, 0.0))
        return sorted(rows, key=lambda r: r.timestamp)


def _autoscale_core(spec) -> AutoscaleRun:
    """Execute one :class:`repro.runner.AutoscaleSpec` (the engine's
    in-process autoscale point).

    All controllers start from the same 1/1/1 hardware and
    ``spec.initial_soft`` allocation; DCM variants immediately apply their
    model-derived allocation (the paper starts DCM at 1000-200-40, i.e.
    with the optimal DB connection total) and re-allocate after every
    scaling action.
    """
    scenario = ScenarioSpec(
        hardware=HardwareConfig(1, 1, 1),
        soft=spec.initial_soft,
        seed=spec.seed,
        demand_scale=spec.demand_scale,
        imbalance=spec.imbalance,
        controller=spec.controller,
        policy=spec.policy,
        models=spec.models,
        online_refit=spec.online_refit,
        preparation_periods=spec.preparation_periods,
        workload="trace",
        trace=spec.trace,
        max_users=spec.max_users,
        think_time=spec.think_time,
    )
    with Deployment(scenario) as dep:
        dep.run()

    return AutoscaleRun(
        controller_name=spec.controller,
        duration=dep.duration,
        system=dep.system,
        controller=dep.controller,
        collector=dep.collector,
        hypervisor=dep.hypervisor,
        vm_agent=dep.vm_agent,
        app_agent=dep.app_agent,
        trace_gen=dep.workload,
        request_log=list(dep.system.request_log),
        failed=len(dep.system.failure_log),
    )


def run_autoscale_experiment(
    controller: str,
    trace: WorkloadTrace,
    max_users: int,
    seed: int = 0,
    demand_scale: float = 1.0,
    policy: Optional[ScalingPolicy] = None,
    initial_soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
    seeded_models: Optional[Dict[str, ConcurrencyModel]] = None,
    imbalance: float = 0.05,
    think_time: float = 3.0,
    online_refit: bool = True,
    preparation_periods: Optional[Dict[str, float]] = None,
) -> AutoscaleRun:
    """Run one controller against one trace — the Fig 5 harness.

    ``controller`` is ``"dcm"``, ``"ec2"``, or ``"predictive"`` (the
    trend-forecasting DCM extension).

    .. deprecated:: 1.0
       Build a :class:`repro.runner.AutoscaleSpec` and call
       :func:`repro.runner.run` instead.
    """
    from repro.runner import AutoscaleSpec, run

    spec = AutoscaleSpec(
        controller=controller,
        trace=trace,
        max_users=max_users,
        seed=seed,
        demand_scale=demand_scale,
        policy=policy,
        initial_soft=initial_soft,
        models=seeded_models,
        imbalance=imbalance,
        think_time=think_time,
        online_refit=online_refit,
        preparation_periods=preparation_periods,
    )
    _warn_deprecated("run_autoscale_experiment", "repro.runner.run(AutoscaleSpec(...))")
    return run(spec, jobs=1, cache=False).value
