"""High-level experiment runners shared by benchmarks and examples.

Each paper artefact (Fig 2a/2b, Table I, Fig 4a/4b, Fig 5) maps to one
experiment; since the engine redesign the canonical entry point is a
frozen spec dataclass executed by :func:`repro.runner.run` (parallel
fan-out + spec-keyed result caching; see DESIGN.md §3 "Experiment
engine").  This module keeps

* result dataclasses the engine's point functions and reducers use
  (the building blocks themselves now live in the scenario layer:
  :func:`repro.scenario.build_system`,
  :func:`repro.scenario.measure_steady_state` — re-exported here so
  historical imports keep working),
* the in-process autoscale point (:func:`_autoscale_core`) and the
  offline model cache (:func:`trained_models`).

The historical serial wrappers (``stress_tier_sweep``, ``jmeter_sweep``,
``train_tier_model``, ``validation_curves``, ``run_autoscale_experiment``)
have been removed: build the corresponding :mod:`repro.runner` spec and
call :func:`repro.runner.run` (``jobs=1, cache=False`` reproduces the old
serial behaviour bit-for-bit).

Runners are deterministic given a seed and support ``demand_scale`` — a
speed knob that multiplies all CPU demands (capacities shrink by the same
factor, optimal concurrencies are *unchanged* because they depend only on
the contention law; see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import Hypervisor
from repro.control import AppAgent, VMAgent
from repro.errors import ConfigurationError
from repro.model import (
    ConcurrencyModel,
    FitResult,
)
from repro.monitor import MetricCollector
from repro.ntier import (
    HardwareConfig,
    NTierSystem,
    SoftResourceConfig,
)
from repro.runner.specs import DB_TRAINING_LEVELS, TRAINING_LEVELS  # noqa: F401
from repro.scenario import (  # noqa: F401
    Deployment,
    ScenarioSpec,
    SteadyState,
    build_system,
    measure_steady_state,
)
from repro.workload import TraceDrivenGenerator
from repro.workload.servlets import Servlet, ServletCatalog


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------
#
# ``build_system``, ``SteadyState``, and ``measure_steady_state`` now live
# in the scenario layer (the composition root measures what it builds);
# they are re-imported above so every historical ``from
# repro.analysis.experiments import measure_steady_state`` keeps working.


# ---------------------------------------------------------------------------
# Fig 2(a): direct tier stress with controlled concurrency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StressPoint:
    """One point of a direct-stress sweep."""

    target_concurrency: int
    measured_concurrency: float
    throughput: float  # HTTP-equivalent requests/s


def _stress_servlet(catalog: ServletCatalog, tier: str) -> Tuple[Servlet, float]:
    """A synthetic single-tier servlet matching the mix's mean demands.

    Returns the servlet and the visit ratio used to normalise throughput to
    HTTP-equivalents.
    """
    means = catalog.mean_demands()
    if tier == "db":
        queries = means["db_queries"]
        per_query = means["db_total"] / queries
        return (
            Servlet("StressQuery", "browse", 0.0, 0.0, (per_query,)),
            queries,
        )
    if tier == "app":
        return Servlet("StressServlet", "browse", 0.0, means["tomcat"], ()), 1.0
    raise ConfigurationError(f"unsupported stress tier {tier!r}")


# ---------------------------------------------------------------------------
# JMeter sweeps and model training (Table I)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One JMeter operating point against the full system."""

    users: int
    steady: SteadyState


@dataclass(frozen=True)
class TrainingOutcome:
    """Everything the Table I row for one tier needs."""

    tier: str
    fit: FitResult
    samples: List[Tuple[float, float]]

    @property
    def model(self) -> ConcurrencyModel:
        """The fitted model."""
        return self.fit.model


def hardware_count(hardware: HardwareConfig, tier: str) -> int:
    """Server count of ``tier`` in a hardware config."""
    return {"web": hardware.web, "app": hardware.app, "db": hardware.db}[tier]


_MODEL_CACHE: Dict[Tuple[float, int], Dict[str, ConcurrencyModel]] = {}


def trained_models(
    demand_scale: float = 1.0, seed: int = 0
) -> Dict[str, ConcurrencyModel]:
    """Offline-trained models per tier, cached per (scale, seed).

    This is what DCM seeds its online estimator with — the paper trains
    with JMeter before the autoscaling runs.
    """
    from repro.runner import TrainingSpec, run

    key = (demand_scale, seed)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = {
            tier: run(
                TrainingSpec(tier=tier, seed=seed, demand_scale=demand_scale),
                jobs=1,
                cache=False,
            ).value.model
            for tier in ("app", "db")
        }
    return _MODEL_CACHE[key]


# ---------------------------------------------------------------------------
# Fig 4: validation under realistic RUBBoS workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ValidationCurve:
    """Throughput-vs-users curve for one soft allocation."""

    soft: SoftResourceConfig
    users: Tuple[int, ...]
    throughput: Tuple[float, ...]
    mean_response_time: Tuple[float, ...]

    @property
    def peak_throughput(self) -> float:
        """Best sustained throughput across the user ramp."""
        return max(self.throughput)


# ---------------------------------------------------------------------------
# Fig 5: DCM vs EC2-AutoScale under a bursty trace
# ---------------------------------------------------------------------------

@dataclass
class AutoscaleRun:
    """Everything captured from one autoscaling experiment."""

    controller_name: str
    duration: float
    system: NTierSystem
    controller: object
    collector: MetricCollector
    hypervisor: Hypervisor
    vm_agent: VMAgent
    app_agent: Optional[AppAgent]
    trace_gen: TraceDrivenGenerator
    request_log: List[Tuple[float, float]] = field(default_factory=list)
    failed: int = 0

    @property
    def vm_seconds(self) -> float:
        """Billed VM-seconds up to the end of the run."""
        return self.hypervisor.billing.vm_seconds(self.duration)

    def tier_vm_timeline(self, tier: str) -> List[Tuple[float, int]]:
        """(time, server count) change points for ``tier``."""
        return self.controller.scaling_timeline(tier)

    def records(self, tier: str) -> List:
        """All retained metric records for ``tier``, time-sorted."""
        rows = []
        for name in self.collector.servers(tier):
            rows.extend(self.collector.recent(name, 0.0))
        return sorted(rows, key=lambda r: r.timestamp)


def _autoscale_core(spec) -> AutoscaleRun:
    """Execute one :class:`repro.runner.AutoscaleSpec` (the engine's
    in-process autoscale point).

    All controllers start from the same 1/1/1 hardware and
    ``spec.initial_soft`` allocation; DCM variants immediately apply their
    model-derived allocation (the paper starts DCM at 1000-200-40, i.e.
    with the optimal DB connection total) and re-allocate after every
    scaling action.
    """
    scenario = ScenarioSpec(
        hardware=HardwareConfig(1, 1, 1),
        soft=spec.initial_soft,
        seed=spec.seed,
        demand_scale=spec.demand_scale,
        imbalance=spec.imbalance,
        controller=spec.controller,
        policy=spec.policy,
        models=spec.models,
        online_refit=spec.online_refit,
        preparation_periods=spec.preparation_periods,
        scheduler=getattr(spec, "scheduler", "heap"),
        workload="trace",
        trace=spec.trace,
        max_users=spec.max_users,
        think_time=spec.think_time,
    )
    with Deployment(scenario) as dep:
        dep.run()

    return AutoscaleRun(
        controller_name=spec.controller,
        duration=dep.duration,
        system=dep.system,
        controller=dep.controller,
        collector=dep.collector,
        hypervisor=dep.hypervisor,
        vm_agent=dep.vm_agent,
        app_agent=dep.app_agent,
        trace_gen=dep.workload,
        request_log=list(dep.system.request_log),
        failed=len(dep.system.failure_log),
    )
