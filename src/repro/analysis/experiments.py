"""High-level experiment runners shared by benchmarks and examples.

Each paper artefact (Fig 2a/2b, Table I, Fig 4a/4b, Fig 5) maps to one
runner here; the ``benchmarks/`` harnesses parameterise and print them.
Runners are deterministic given a seed and support ``demand_scale`` — a
speed knob that multiplies all CPU demands (capacities shrink by the same
factor, optimal concurrencies are *unchanged* because they depend only on
the contention law; see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.broker import KafkaBroker, Producer
from repro.cluster import Hypervisor
from repro.control import (
    AppAgent,
    DCMController,
    EC2AutoScaleController,
    PredictiveDCMController,
    ScalingPolicy,
    VMAgent,
)
from repro.errors import ConfigurationError
from repro.model import (
    ConcurrencyModel,
    FitResult,
    OnlineModelEstimator,
    bin_samples,
    fit_concurrency_model,
)
from repro.monitor import METRICS_TOPIC, MetricCollector, MonitorFleet
from repro.ntier import (
    HardwareConfig,
    MySQLServer,
    NTierSystem,
    SoftResourceConfig,
    TomcatServer,
)
from repro.ntier.balancer import Balancer
from repro.ntier.request import DemandProfile, Request
from repro.sim import Environment, RandomStreams
from repro.workload import (
    JMeterGenerator,
    RubbosGenerator,
    TraceDrivenGenerator,
    WorkloadTrace,
    browse_only_catalog,
)
from repro.workload.servlets import Servlet, ServletCatalog


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def build_system(
    hardware: HardwareConfig = HardwareConfig(1, 1, 1),
    soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
    seed: int = 0,
    demand_scale: float = 1.0,
    demand_distribution: str = "exponential",
    imbalance: float = 0.05,
    catalog: Optional[ServletCatalog] = None,
) -> Tuple[Environment, NTierSystem]:
    """One-call construction of an environment + n-tier system."""
    env = Environment()
    streams = RandomStreams(seed)
    cat = catalog or browse_only_catalog(
        demand_distribution=demand_distribution, demand_scale=demand_scale
    )
    system = NTierSystem(
        env, streams, hardware=hardware, soft=soft, catalog=cat, imbalance=imbalance
    )
    return env, system


@dataclass(frozen=True)
class SteadyState:
    """Measured steady-state operating point of one run window."""

    throughput: float
    mean_response_time: float
    tier_concurrency: Dict[str, float]
    tier_utilization: Dict[str, float]
    tier_efficiency: Dict[str, float]
    tier_busy_fraction: Dict[str, float]
    completed: int
    failed: int


def measure_steady_state(
    env: Environment,
    system: NTierSystem,
    warmup: float,
    duration: float,
) -> SteadyState:
    """Run ``warmup`` then ``duration`` seconds; report windowed stats."""
    if warmup < 0 or duration <= 0:
        raise ConfigurationError("need warmup >= 0 and duration > 0")
    env.run(until=env.now + warmup)
    base_completed = system.completed_count()
    base_failed = len(system.failure_log)
    base_int: Dict[str, Tuple[float, float, float, float]] = {}
    servers = system.all_servers()
    for s in servers:
        base_int[s.name] = (
            s.cpu.busy_integral(),
            s.cpu.utilization_integral(),
            s.cpu.efficiency_integral(),
            s.cpu.nonidle_integral(),
        )
    start = env.now
    env.run(until=start + duration)

    completed_rows = [
        rt for created, rt in system.request_log if created + rt >= start
    ]
    completed = system.completed_count() - base_completed
    tier_conc: Dict[str, List[float]] = {}
    tier_util: Dict[str, List[float]] = {}
    tier_eff: Dict[str, List[float]] = {}
    tier_busy: Dict[str, List[float]] = {}
    for s in servers:
        b0, u0, e0, i0 = base_int[s.name]
        tier_conc.setdefault(s.tier, []).append((s.cpu.busy_integral() - b0) / duration)
        tier_util.setdefault(s.tier, []).append(
            (s.cpu.utilization_integral() - u0) / duration
        )
        tier_eff.setdefault(s.tier, []).append(
            (s.cpu.efficiency_integral() - e0) / duration
        )
        tier_busy.setdefault(s.tier, []).append(
            (s.cpu.nonidle_integral() - i0) / duration
        )
    return SteadyState(
        throughput=completed / duration,
        mean_response_time=float(np.mean(completed_rows)) if completed_rows else 0.0,
        tier_concurrency={t: float(np.mean(v)) for t, v in tier_conc.items()},
        tier_utilization={t: float(np.mean(v)) for t, v in tier_util.items()},
        tier_efficiency={t: float(np.mean(v)) for t, v in tier_eff.items()},
        tier_busy_fraction={t: float(np.mean(v)) for t, v in tier_busy.items()},
        completed=completed,
        failed=len(system.failure_log) - base_failed,
    )


# ---------------------------------------------------------------------------
# Fig 2(a): direct tier stress with controlled concurrency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StressPoint:
    """One point of a direct-stress sweep."""

    target_concurrency: int
    measured_concurrency: float
    throughput: float  # HTTP-equivalent requests/s


def _stress_servlet(catalog: ServletCatalog, tier: str) -> Tuple[Servlet, float]:
    """A synthetic single-tier servlet matching the mix's mean demands.

    Returns the servlet and the visit ratio used to normalise throughput to
    HTTP-equivalents.
    """
    means = catalog.mean_demands()
    if tier == "db":
        queries = means["db_queries"]
        per_query = means["db_total"] / queries
        return (
            Servlet("StressQuery", "browse", 0.0, 0.0, (per_query,)),
            queries,
        )
    if tier == "app":
        return Servlet("StressServlet", "browse", 0.0, means["tomcat"], ()), 1.0
    raise ConfigurationError(f"unsupported stress tier {tier!r}")


def stress_tier_sweep(
    tier: str,
    concurrencies: Sequence[int],
    seed: int = 0,
    demand_scale: float = 1.0,
    warmup: float = 3.0,
    duration: float = 15.0,
    demand_distribution: str = "exponential",
) -> List[StressPoint]:
    """The paper's Section II-B experiment: stress one server type with a
    matched thread pool at each concurrency level (Fig 2(a)).

    Builds a standalone server of ``tier`` and drives it with zero-think
    closed loops whose population *is* the request-processing concurrency.
    Throughput is normalised to HTTP-equivalents via the mix's visit ratio.
    """
    catalog = browse_only_catalog(
        demand_distribution=demand_distribution, demand_scale=demand_scale
    )
    servlet, visit_ratio = _stress_servlet(catalog, tier)
    points: List[StressPoint] = []
    for conc in concurrencies:
        if conc < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {conc}")
        env = Environment()
        streams = RandomStreams(seed + conc)
        rng = streams.stream("stress.demand")
        if tier == "db":
            server = MySQLServer(env, "mysql-stress", max_connections=10 * conc + 50)
        else:
            dummy = Balancer("stress-db")
            server = TomcatServer(
                env, "tomcat-stress", db_balancer=dummy, threads=conc, db_connections=1
            )

        def loop(env=env, server=server, rng=rng):
            while True:
                demand = servlet.sample_demand(rng, demand_distribution)
                request = Request(servlet=servlet, created=env.now, demand=demand)
                if tier == "db":
                    yield server.handle(request, demand=demand.db_queries[0])
                else:
                    yield server.handle(request)

        for _ in range(conc):
            env.process(loop())
        env.run(until=warmup)
        base_completions = server.completions
        base_busy = server.cpu.busy_integral()
        env.run(until=warmup + duration)
        xput = (server.completions - base_completions) / duration / visit_ratio
        measured = (server.cpu.busy_integral() - base_busy) / duration
        points.append(StressPoint(conc, measured, xput))
    return points


# ---------------------------------------------------------------------------
# JMeter sweeps and model training (Table I)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One JMeter operating point against the full system."""

    users: int
    steady: SteadyState


def jmeter_sweep(
    users_levels: Sequence[int],
    hardware: HardwareConfig = HardwareConfig(1, 1, 1),
    soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
    seed: int = 0,
    demand_scale: float = 1.0,
    warmup: float = 4.0,
    duration: float = 12.0,
    imbalance: float = 0.05,
) -> List[SweepPoint]:
    """Run the full system at each fixed JMeter concurrency level."""
    points: List[SweepPoint] = []
    for users in users_levels:
        env, system = build_system(
            hardware=hardware,
            soft=soft,
            seed=seed + users,
            demand_scale=demand_scale,
            imbalance=imbalance,
        )
        JMeterGenerator(env, system, users).start()
        points.append(
            SweepPoint(users, measure_steady_state(env, system, warmup, duration))
        )
    return points


#: Default JMeter levels for model training ("concurrency from 1 to 200").
TRAINING_LEVELS: Tuple[int, ...] = (
    1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 36, 44, 55, 65, 80, 100, 130, 160, 200
)

#: DB-model training levels: swept within the default connection pools'
#: normal operating region (the paper leaves the MySQL sweep range
#: unspecified; past ~100 concurrent queries the server is already deep in
#: its pathological regime and no sane training would dwell there).
DB_TRAINING_LEVELS: Tuple[int, ...] = (
    1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 36, 44, 55, 65, 80, 90, 100, 110, 120
)


@dataclass(frozen=True)
class TrainingOutcome:
    """Everything the Table I row for one tier needs."""

    tier: str
    fit: FitResult
    samples: List[Tuple[float, float]]

    @property
    def model(self) -> ConcurrencyModel:
        """The fitted model."""
        return self.fit.model


def train_tier_model(
    tier: str,
    seed: int = 0,
    demand_scale: float = 1.0,
    levels: Optional[Sequence[int]] = None,
    warmup: float = 4.0,
    duration: float = 24.0,
) -> TrainingOutcome:
    """Reproduce the paper's model-training procedure (Section V-A).

    Tomcat: 1/1/1 under the default soft allocation — the app tier is the
    operative bottleneck.  MySQL: 1/2/1 so the DB tier saturates first.  At
    each JMeter level the *measured* bottleneck-tier concurrency and the
    system throughput form one training pair; Eq (7) is then least-squares
    fitted.
    """
    if tier == "app":
        hardware = HardwareConfig(1, 1, 1)
        levels = TRAINING_LEVELS if levels is None else levels
    elif tier == "db":
        hardware = HardwareConfig(1, 2, 1)
        levels = DB_TRAINING_LEVELS if levels is None else levels
    else:
        raise ConfigurationError(f"cannot train tier {tier!r}")
    sweep = jmeter_sweep(
        levels,
        hardware=hardware,
        soft=SoftResourceConfig.DEFAULT,
        seed=seed,
        demand_scale=demand_scale,
        warmup=warmup,
        duration=duration,
    )
    # tier_concurrency is already a per-server mean; throughput is system-wide
    # and must be divided by the tier's server count for single-server pairs.
    # Both are conditioned on the tier's non-idle time so low-load pairs sit
    # on the contention curve instead of being diluted by idle gaps.
    samples = []
    for p in sweep:
        busy = p.steady.tier_busy_fraction.get(tier, 0.0)
        if p.steady.throughput <= 0 or busy < 0.05:
            continue
        samples.append(
            (
                p.steady.tier_concurrency[tier] / busy,
                p.steady.throughput / hardware_count(hardware, tier) / busy,
            )
        )
    binned = bin_samples(samples, bin_width=1.0)
    fit = fit_concurrency_model(binned, tier=tier)
    return TrainingOutcome(tier=tier, fit=fit, samples=samples)


def hardware_count(hardware: HardwareConfig, tier: str) -> int:
    """Server count of ``tier`` in a hardware config."""
    return {"web": hardware.web, "app": hardware.app, "db": hardware.db}[tier]


_MODEL_CACHE: Dict[Tuple[float, int], Dict[str, ConcurrencyModel]] = {}


def trained_models(
    demand_scale: float = 1.0, seed: int = 0
) -> Dict[str, ConcurrencyModel]:
    """Offline-trained models per tier, cached per (scale, seed).

    This is what DCM seeds its online estimator with — the paper trains
    with JMeter before the autoscaling runs.
    """
    key = (demand_scale, seed)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = {
            "app": train_tier_model("app", seed=seed, demand_scale=demand_scale).model,
            "db": train_tier_model("db", seed=seed, demand_scale=demand_scale).model,
        }
    return _MODEL_CACHE[key]


# ---------------------------------------------------------------------------
# Fig 4: validation under realistic RUBBoS workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ValidationCurve:
    """Throughput-vs-users curve for one soft allocation."""

    soft: SoftResourceConfig
    users: Tuple[int, ...]
    throughput: Tuple[float, ...]
    mean_response_time: Tuple[float, ...]

    @property
    def peak_throughput(self) -> float:
        """Best sustained throughput across the user ramp."""
        return max(self.throughput)


def validation_curves(
    hardware: HardwareConfig,
    soft_configs: Sequence[SoftResourceConfig],
    user_levels: Sequence[int],
    seed: int = 0,
    demand_scale: float = 1.0,
    think_time: float = 3.0,
    warmup: float = 5.0,
    duration: float = 20.0,
    imbalance: float = 0.05,
) -> List[ValidationCurve]:
    """The Fig 4 experiment: same hardware, several soft allocations, a
    ramp of RUBBoS users (3 s think time); who sustains the most throughput?
    """
    curves: List[ValidationCurve] = []
    for soft in soft_configs:
        xs: List[float] = []
        rts: List[float] = []
        for users in user_levels:
            env, system = build_system(
                hardware=hardware,
                soft=soft,
                seed=seed + users,
                demand_scale=demand_scale,
                imbalance=imbalance,
            )
            RubbosGenerator(env, system, users=users, think_time=think_time)
            steady = measure_steady_state(env, system, warmup, duration)
            xs.append(steady.throughput)
            rts.append(steady.mean_response_time)
        curves.append(
            ValidationCurve(
                soft=soft,
                users=tuple(user_levels),
                throughput=tuple(xs),
                mean_response_time=tuple(rts),
            )
        )
    return curves


# ---------------------------------------------------------------------------
# Fig 5: DCM vs EC2-AutoScale under a bursty trace
# ---------------------------------------------------------------------------

@dataclass
class AutoscaleRun:
    """Everything captured from one autoscaling experiment."""

    controller_name: str
    duration: float
    system: NTierSystem
    controller: object
    collector: MetricCollector
    hypervisor: Hypervisor
    vm_agent: VMAgent
    app_agent: Optional[AppAgent]
    trace_gen: TraceDrivenGenerator
    request_log: List[Tuple[float, float]] = field(default_factory=list)
    failed: int = 0

    @property
    def vm_seconds(self) -> float:
        """Billed VM-seconds up to the end of the run."""
        return self.hypervisor.billing.vm_seconds(self.duration)

    def tier_vm_timeline(self, tier: str) -> List[Tuple[float, int]]:
        """(time, server count) change points for ``tier``."""
        return self.controller.scaling_timeline(tier)

    def records(self, tier: str) -> List:
        """All retained metric records for ``tier``, time-sorted."""
        rows = []
        for name in self.collector.servers(tier):
            rows.extend(self.collector.recent(name, 0.0))
        return sorted(rows, key=lambda r: r.timestamp)


def run_autoscale_experiment(
    controller: str,
    trace: WorkloadTrace,
    max_users: int,
    seed: int = 0,
    demand_scale: float = 1.0,
    policy: Optional[ScalingPolicy] = None,
    initial_soft: SoftResourceConfig = SoftResourceConfig.DEFAULT,
    seeded_models: Optional[Dict[str, ConcurrencyModel]] = None,
    imbalance: float = 0.05,
    think_time: float = 3.0,
    online_refit: bool = True,
    preparation_periods: Optional[Dict[str, float]] = None,
) -> AutoscaleRun:
    """Run one controller against one trace — the Fig 5 harness.

    ``controller`` is ``"dcm"``, ``"ec2"``, or ``"predictive"`` (the
    trend-forecasting DCM extension).  All start from the same 1/1/1
    hardware and ``initial_soft`` allocation; DCM variants immediately apply
    their model-derived allocation (the paper starts DCM at 1000-200-40,
    i.e. with the optimal DB connection total) and re-allocate after every
    scaling action.
    """
    if controller not in ("dcm", "ec2", "predictive"):
        raise ConfigurationError(f"unknown controller {controller!r}")
    env, system = build_system(
        hardware=HardwareConfig(1, 1, 1),
        soft=initial_soft,
        seed=seed,
        demand_scale=demand_scale,
        imbalance=imbalance,
    )
    duration = trace.duration

    broker = KafkaBroker(env)
    broker.create_topic(METRICS_TOPIC, partitions=4)
    producer = Producer(broker, client_id="monitor")
    fleet = MonitorFleet(env, system, producer)
    hypervisor = Hypervisor(env)
    vm_agent = VMAgent(
        env, system, hypervisor, fleet, preparation_periods=preparation_periods
    )
    vm_agent.bootstrap()
    collector = MetricCollector(broker, history=int(duration) + 120)
    policy = policy or ScalingPolicy()

    app_agent: Optional[AppAgent] = None
    if controller in ("dcm", "predictive"):
        app_agent = AppAgent(env, system)
        models = seeded_models or trained_models(demand_scale, seed)
        estimator = OnlineModelEstimator(
            collector,
            visit_ratios={"web": 1.0, "app": 1.0, "db": system.catalog.visit_ratios()["db"]},
        )
        for tier, model in models.items():
            estimator.seed(tier, model)
        cls = DCMController if controller == "dcm" else PredictiveDCMController
        ctl: object = cls(
            env,
            system,
            collector,
            vm_agent,
            app_agent,
            estimator,
            policy=policy,
            refit_every_periods=4 if online_refit else 10**9,
        )
    else:
        ctl = EC2AutoScaleController(env, system, collector, vm_agent, policy=policy)

    trace_gen = TraceDrivenGenerator(
        env, system, trace, max_users=max_users, think_time=think_time
    )
    trace_gen.start()
    env.run(until=duration)
    collector.drain()
    ctl.stop()
    fleet.stop()

    return AutoscaleRun(
        controller_name=controller,
        duration=duration,
        system=system,
        controller=ctl,
        collector=collector,
        hypervisor=hypervisor,
        vm_agent=vm_agent,
        app_agent=app_agent,
        trace_gen=trace_gen,
        request_log=list(system.request_log),
        failed=len(system.failure_log),
    )
