"""Fine-grained request-trace analysis: per-tier latency decomposition.

The paper's monitor collects "fine-grained measurement data"; requests in
this library can record every interaction (tier, queue time, service time)
when tracing is enabled.  This module turns those records into the
diagnostics an operator uses to find *where* latency lives — the queueing
vs service split per tier that makes a bottleneck shift (the Fig 5
incidents) directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ntier.request import Request


@dataclass(frozen=True)
class TierLatency:
    """Aggregated latency contribution of one tier."""

    tier: str
    visits_per_request: float
    mean_queue_time: float
    mean_service_time: float

    @property
    def mean_residence(self) -> float:
        """Queue + service per visit."""
        return self.mean_queue_time + self.mean_service_time

    @property
    def mean_total_per_request(self) -> float:
        """Residence × visits: this tier's share of a request's RT."""
        return self.mean_residence * self.visits_per_request


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-tier latency decomposition over a set of traced requests."""

    requests: int
    mean_response_time: float
    tiers: Tuple[TierLatency, ...]

    def tier(self, name: str) -> TierLatency:
        """Lookup one tier's row."""
        for row in self.tiers:
            if row.tier == name:
                return row
        raise ConfigurationError(f"no tier {name!r} in breakdown")

    def dominant_tier(self) -> TierLatency:
        """The tier contributing the most to end-to-end response time.

        The web tier's residence *contains* the downstream tiers' time (it
        holds the request while they work), so dominance is judged among
        non-entry tiers plus the web tier's own exclusive share.
        """
        non_entry = [t for t in self.tiers if t.tier != "web"]
        if not non_entry:
            return self.tiers[0]
        return max(non_entry, key=lambda t: t.mean_total_per_request)

    def rows(self) -> List[List[object]]:
        """Table rows: tier, visits, queue, service, share of RT."""
        out: List[List[object]] = []
        for t in self.tiers:
            share = (
                t.mean_total_per_request / self.mean_response_time
                if self.mean_response_time > 0
                else 0.0
            )
            out.append(
                [t.tier, t.visits_per_request, t.mean_queue_time,
                 t.mean_service_time, share]
            )
        return out


def breakdown(requests: Iterable[Request]) -> LatencyBreakdown:
    """Aggregate traced, completed requests into a latency breakdown.

    Untraced or in-flight requests are skipped; an empty result set is an
    error (it usually means tracing was never enabled).
    """
    queue: Dict[str, List[float]] = {}
    service: Dict[str, List[float]] = {}
    visits: Dict[str, int] = {}
    rts: List[float] = []
    count = 0
    for request in requests:
        if request.interactions is None or request.completed is None:
            continue
        count += 1
        rts.append(request.response_time)
        for interaction in request.interactions:
            if interaction.completed is None:
                continue
            queue.setdefault(interaction.tier, []).append(interaction.queue_time)
            service.setdefault(interaction.tier, []).append(
                interaction.residence_time - interaction.queue_time
            )
            visits[interaction.tier] = visits.get(interaction.tier, 0) + 1
    if count == 0:
        raise ConfigurationError(
            "no traced, completed requests — call request.enable_tracing()"
        )
    tiers = tuple(
        TierLatency(
            tier=tier,
            visits_per_request=visits[tier] / count,
            mean_queue_time=float(np.mean(queue[tier])),
            mean_service_time=float(np.mean(service[tier])),
        )
        for tier in sorted(queue)
    )
    return LatencyBreakdown(
        requests=count,
        mean_response_time=float(np.mean(rts)),
        tiers=tiers,
    )


def sample_traced_requests(
    system,
    env,
    count: int,
    max_wait: float = 60.0,
):
    """Process generator: submit ``count`` traced requests through a live
    system (alongside whatever workload is running) and return them.

    Usage::

        proc = env.process(sample_traced_requests(system, env, 50))
        env.run(until=proc)
        report = breakdown(proc.value)
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    collected = []
    deadline = env.now + max_wait
    for _ in range(count):
        request, done = system.submit()
        request.enable_tracing()
        yield done
        collected.append(request)
        if env.now >= deadline:
            break
    return collected
