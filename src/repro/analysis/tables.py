"""ASCII rendering of tables and series for benchmark output.

The benchmark harnesses print the same rows/series the paper reports; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md quotes it
verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_cell(value: object, precision: int = 3) -> str:
    """Format one cell: floats get fixed precision (scientific when tiny)."""
    if isinstance(value, float):
        if value != 0 and abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table_artifact(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
    metrics: Optional[dict] = None,
) -> dict:
    """A rendered table as a lab artifact payload.

    Pairs the ASCII rendering (``text``, what lands in ``out/*.txt``) with
    the raw ``headers``/``rows`` under ``data`` so downstream tooling can
    re-plot without re-parsing the ASCII, plus optional scalar ``metrics``
    for ``repro lab diff``.
    """
    row_list = [list(row) for row in rows]
    return {
        "text": render_table(headers, row_list, precision=precision, title=title),
        "data": {"headers": list(headers), "rows": row_list},
        "metrics": dict(metrics or {}),
    }


def render_series(
    label: str,
    pairs: Sequence[tuple],
    max_points: int = 40,
    precision: int = 1,
) -> str:
    """Render a (time, value) series compactly, downsampling to
    ``max_points`` evenly spaced samples."""
    if not pairs:
        return f"{label}: (empty)"
    if len(pairs) > max_points:
        step = len(pairs) / max_points
        pairs = [pairs[int(i * step)] for i in range(max_points)]
    body = " ".join(
        f"{t:.0f}s:{format_cell(float(v), precision)}" for t, v in pairs
    )
    return f"{label}: {body}"


def render_run_telemetry(telemetry) -> str:
    """Render one engine invocation's timing/cache telemetry.

    ``telemetry`` is duck-typed (any object with the
    :class:`repro.runner.RunTelemetry` attributes), keeping this module
    free of engine imports.
    """
    point_seconds = [s for s in telemetry.point_seconds if s > 0]
    rows = [
        ["points", float(telemetry.points)],
        ["cache hits", float(telemetry.cache_hits)],
        ["cache misses", float(telemetry.cache_misses)],
        ["workers", float(telemetry.jobs)],
        ["wall-clock (s)", telemetry.wall_seconds],
        ["compute (s)", telemetry.busy_seconds],
        ["mean point (s)", float(sum(point_seconds) / len(point_seconds))
         if point_seconds else 0.0],
        ["max point (s)", max(point_seconds) if point_seconds else 0.0],
        ["worker utilization", telemetry.worker_utilization],
    ]
    cache_note = (
        f"cache: {telemetry.cache_dir}" if telemetry.cache_enabled
        else "cache: disabled"
    )
    return render_table(
        ["telemetry", "value"], rows, title="engine telemetry"
    ) + f"\n{cache_note}"


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode sparkline for quick visual shape checks in terminals."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    vals = list(values)
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in vals)
