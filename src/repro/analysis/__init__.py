"""Post-processing and experiment orchestration.

Time-series binning, SLA/stability reports, ASCII tables, and the
per-artefact experiment runners (``experiments``) that the benchmark
harnesses parameterise.
"""

from repro.analysis import experiments, persistence, tracing
from repro.analysis.persistence import (
    load_curve,
    load_run,
    run_to_dict,
    save_curve,
    save_run,
)
from repro.analysis.tracing import LatencyBreakdown, TierLatency, breakdown
from repro.analysis.sla import (
    DEFAULT_SPIKE_THRESHOLD,
    SpikeEpisode,
    StabilityReport,
    find_spikes,
    sla_violation_fraction,
    stability_report,
)
from repro.analysis.tables import render_series, render_sparkline, render_table
from repro.analysis.timeseries import (
    BinnedSeries,
    metric_series,
    percentile,
    response_time_series,
    step_series,
    throughput_series,
)

__all__ = [
    "BinnedSeries",
    "LatencyBreakdown",
    "TierLatency",
    "breakdown",
    "DEFAULT_SPIKE_THRESHOLD",
    "SpikeEpisode",
    "StabilityReport",
    "experiments",
    "persistence",
    "load_curve",
    "load_run",
    "run_to_dict",
    "save_curve",
    "save_run",
    "tracing",
    "find_spikes",
    "metric_series",
    "percentile",
    "render_series",
    "render_sparkline",
    "render_table",
    "response_time_series",
    "sla_violation_fraction",
    "stability_report",
    "step_series",
    "throughput_series",
]
