"""Saving and loading experiment results (JSON/CSV).

Experiments are cheap to re-run but comparisons outlive sessions: these
helpers serialise the run artefacts — stability reports, time series,
scaling timelines, sweep curves — into plain JSON/CSV files that the CLI
writes and other tooling (or EXPERIMENTS.md updates) can consume.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sla import StabilityReport, stability_report
from repro.analysis.timeseries import response_time_series, throughput_series
from repro.errors import ConfigurationError

#: Format version stamped into every JSON artefact.
SCHEMA_VERSION = 1


def write_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Write a simple CSV with a header row."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ConfigurationError(
                    f"row width {len(row)} != header width {len(headers)}"
                )
            writer.writerow(row)


def read_csv(path: str) -> Tuple[List[str], List[List[str]]]:
    """Read a CSV written by :func:`write_csv`; returns (headers, rows)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            headers = next(reader)
        except StopIteration:
            raise ConfigurationError(f"{path}: empty CSV") from None
        return headers, [row for row in reader]


def report_to_dict(report: StabilityReport) -> Dict[str, Any]:
    """A stability report as a plain dict."""
    return asdict(report)


def run_to_dict(run, bin_width: float = 5.0) -> Dict[str, Any]:
    """Serialise an :class:`~repro.analysis.experiments.AutoscaleRun`.

    Captures the summary report, binned response-time (p95) and throughput
    series, per-tier VM timelines, controller events, and (for DCM runs)
    the soft-resource re-allocation log.  The raw request log is *not*
    included — it is large and reproducible from the seed.
    """
    report = stability_report(
        run.request_log, run.failed, run.duration, vm_seconds=run.vm_seconds
    )
    rt = response_time_series(run.request_log, run.duration, bin_width, percentile=95.0)
    xput = throughput_series(run.request_log, run.duration, bin_width)
    reallocations: List[Dict[str, Any]] = []
    if run.app_agent is not None:
        reallocations = [
            {"time": a.time, "action": a.action, "detail": a.detail}
            for a in run.app_agent.actions
        ]
    return {
        "schema_version": SCHEMA_VERSION,
        "controller": run.controller_name,
        "duration": run.duration,
        "report": report_to_dict(report),
        "series": {
            "bin_width": bin_width,
            "p95_response_time": list(rt.values),
            "throughput": list(xput.values),
        },
        "vm_timelines": {
            tier: [[t, c] for t, c in run.tier_vm_timeline(tier)]
            for tier in ("app", "db")
        },
        "events": [
            {"time": e.time, "tier": e.tier, "kind": e.kind, "detail": e.detail}
            for e in run.controller.events
        ],
        "reallocations": reallocations,
    }


def run_artifact(run, bin_width: float = 5.0) -> Dict[str, Any]:
    """An autoscale run as a lab artifact payload (``type="report"``).

    Wraps :func:`run_to_dict` for the content-addressed store: the full
    serialised run under ``data`` and the scalar stability-report fields
    as ``metrics`` so ``repro lab diff`` can show per-metric deltas.
    """
    data = run_to_dict(run, bin_width)
    metrics = {
        name: float(value)
        for name, value in data["report"].items()
        if isinstance(value, (int, float))
    }
    return {"data": data, "metrics": metrics, "type": "report"}


def save_run(run, path: str, bin_width: float = 5.0) -> None:
    """Write an autoscale run's artefact JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(run_to_dict(run, bin_width), fh, indent=2)


def load_run(path: str) -> Dict[str, Any]:
    """Load an artefact written by :func:`save_run` (schema-checked)."""
    with open(path) as fh:
        data = json.load(fh)
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return data


def compare_runs(paths: Sequence[str]) -> List[Tuple[str, Dict[str, Any]]]:
    """Load several run artefacts for side-by-side comparison.

    Returns ``(controller, report dict)`` pairs in input order.
    """
    out: List[Tuple[str, Dict[str, Any]]] = []
    for path in paths:
        data = load_run(path)
        out.append((data["controller"], data["report"]))
    return out


def save_curve(
    path: str,
    x_label: str,
    pairs: Sequence[Tuple[Any, Any]],
    y_label: str = "value",
) -> None:
    """Persist a simple (x, y) curve as CSV."""
    write_csv(path, [x_label, y_label], [[x, y] for x, y in pairs])


def load_curve(path: str) -> List[Tuple[float, float]]:
    """Load a curve written by :func:`save_curve`."""
    _headers, rows = read_csv(path)
    try:
        return [(float(a), float(b)) for a, b, *_ in rows]
    except (ValueError, IndexError) as err:
        raise ConfigurationError(f"{path}: malformed curve row: {err}") from None
