"""Time-series utilities for experiment post-processing.

Everything the benchmarks need to turn raw request logs and metric records
into the per-second/per-bin series the paper plots: binned throughput and
response-time series, percentiles, and step-function sampling for VM-count
timelines.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BinnedSeries:
    """A regular-interval series: ``values[i]`` covers
    ``[start + i*width, start + (i+1)*width)``."""

    start: float
    width: float
    values: Tuple[float, ...]

    @property
    def times(self) -> Tuple[float, ...]:
        """Bin start times."""
        return tuple(self.start + i * self.width for i in range(len(self.values)))

    def pairs(self) -> List[Tuple[float, float]]:
        """``(bin start, value)`` pairs."""
        return list(zip(self.times, self.values))

    def max(self) -> float:
        """Largest bin value (0 for an empty series)."""
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        """Mean bin value (0 for an empty series)."""
        return float(np.mean(self.values)) if self.values else 0.0


def throughput_series(
    request_log: Sequence[Tuple[float, float]],
    duration: float,
    width: float = 1.0,
) -> BinnedSeries:
    """Completed requests per second, binned by completion time.

    ``request_log`` holds ``(created, response_time)`` rows as produced by
    :class:`~repro.ntier.topology.NTierSystem`.
    """
    if width <= 0 or duration <= 0:
        raise ConfigurationError("width and duration must be positive")
    n_bins = int(np.ceil(duration / width))
    counts = np.zeros(n_bins)
    for created, rt in request_log:
        done = created + rt
        idx = int(done / width)
        if 0 <= idx < n_bins:
            counts[idx] += 1
    return BinnedSeries(0.0, width, tuple(float(c / width) for c in counts))


def response_time_series(
    request_log: Sequence[Tuple[float, float]],
    duration: float,
    width: float = 1.0,
    percentile: float = 50.0,
) -> BinnedSeries:
    """Per-bin response-time percentile (by completion time); empty bins 0."""
    if width <= 0 or duration <= 0:
        raise ConfigurationError("width and duration must be positive")
    if not 0 < percentile <= 100:
        raise ConfigurationError("percentile must be in (0, 100]")
    n_bins = int(np.ceil(duration / width))
    buckets: List[List[float]] = [[] for _ in range(n_bins)]
    for created, rt in request_log:
        idx = int((created + rt) / width)
        if 0 <= idx < n_bins:
            buckets[idx].append(rt)
    values = tuple(
        float(np.percentile(b, percentile)) if b else 0.0 for b in buckets
    )
    return BinnedSeries(0.0, width, values)


def percentile(values: Sequence[float], q: float) -> float:
    """Simple percentile with validation (q in (0, 100])."""
    if not values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ConfigurationError("percentile must be in (0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def step_series(
    changes: Sequence[Tuple[float, float]], duration: float, width: float = 1.0
) -> BinnedSeries:
    """Sample a step function (e.g. VM counts over time) onto regular bins.

    ``changes`` is ``(time, value)`` sorted ascending; the value holds until
    the next change.
    """
    if not changes:
        raise ConfigurationError("step_series needs at least one change point")
    times = [t for t, _ in changes]
    if any(b < a for a, b in zip(times, times[1:])):
        raise ConfigurationError("change points must be sorted by time")
    n_bins = int(np.ceil(duration / width))
    values = []
    for i in range(n_bins):
        t = i * width
        idx = bisect_right(times, t) - 1
        values.append(float(changes[max(0, idx)][1]))
    return BinnedSeries(0.0, width, tuple(values))


def metric_series(
    records: Sequence, metric: str, duration: float, width: float = 1.0
) -> BinnedSeries:
    """Bin :class:`~repro.broker.records.MetricRecord` values over time.

    Multiple records landing in one bin are averaged; empty bins carry the
    previous bin's value (metrics are slowly-varying gauges).
    """
    n_bins = int(np.ceil(duration / width))
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for record in records:
        idx = int(record.timestamp / width)
        if 0 <= idx < n_bins:
            sums[idx] += record.get(metric)
            counts[idx] += 1
    values: List[float] = []
    last = 0.0
    for i in range(n_bins):
        if counts[i]:
            last = float(sums[i] / counts[i])
        values.append(last)
    return BinnedSeries(0.0, width, tuple(values))
