"""SLA and stability metrics for controller comparisons.

The paper's Fig 5 argument is qualitative ("much more stable performance");
these metrics make it quantitative: response-time SLA violations, spike
episodes (the paper's >1 s excursions), response-time variability, and a
composite report used by the Fig 5 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import BinnedSeries, response_time_series
from repro.errors import ConfigurationError

#: The paper's visible pathology threshold: 1-second response-time spikes.
DEFAULT_SPIKE_THRESHOLD = 1.0


def sla_violation_fraction(
    request_log: Sequence[Tuple[float, float]], threshold: float
) -> float:
    """Fraction of completed requests with response time above ``threshold``."""
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    if not request_log:
        return 0.0
    violations = sum(1 for _created, rt in request_log if rt > threshold)
    return violations / len(request_log)


@dataclass(frozen=True)
class SpikeEpisode:
    """A maximal run of consecutive bins above the spike threshold."""

    start: float
    end: float
    peak: float

    @property
    def duration(self) -> float:
        """Episode length in seconds."""
        return self.end - self.start


def find_spikes(
    series: BinnedSeries, threshold: float = DEFAULT_SPIKE_THRESHOLD
) -> List[SpikeEpisode]:
    """Group consecutive above-threshold bins into spike episodes."""
    episodes: List[SpikeEpisode] = []
    run_start = None
    run_peak = 0.0
    for t, value in series.pairs():
        if value > threshold:
            if run_start is None:
                run_start = t
                run_peak = value
            else:
                run_peak = max(run_peak, value)
        elif run_start is not None:
            episodes.append(SpikeEpisode(run_start, t, run_peak))
            run_start = None
    if run_start is not None:
        episodes.append(
            SpikeEpisode(run_start, series.start + series.width * len(series.values), run_peak)
        )
    return episodes


@dataclass(frozen=True)
class StabilityReport:
    """Composite stability/efficiency summary for one controller run."""

    completed: int
    failed: int
    mean_response_time: float
    p95_response_time: float
    p99_response_time: float
    max_response_time: float
    rt_coefficient_of_variation: float
    sla_violation_fraction: float
    spike_episodes: int
    spike_seconds: float
    throughput_mean: float
    vm_seconds: float

    def rows(self) -> List[Tuple[str, float]]:
        """``(metric, value)`` rows for table rendering."""
        return [
            ("completed requests", float(self.completed)),
            ("failed requests", float(self.failed)),
            ("mean RT (s)", self.mean_response_time),
            ("p95 RT (s)", self.p95_response_time),
            ("p99 RT (s)", self.p99_response_time),
            ("max RT (s)", self.max_response_time),
            ("RT coeff. of variation", self.rt_coefficient_of_variation),
            ("SLA violations (frac)", self.sla_violation_fraction),
            ("RT spike episodes", float(self.spike_episodes)),
            ("seconds in spike", self.spike_seconds),
            ("mean throughput (req/s)", self.throughput_mean),
            ("VM-seconds", self.vm_seconds),
        ]


def stability_report(
    request_log: Sequence[Tuple[float, float]],
    failed: int,
    duration: float,
    vm_seconds: float = 0.0,
    sla_threshold: float = DEFAULT_SPIKE_THRESHOLD,
    bin_width: float = 1.0,
) -> StabilityReport:
    """Build the composite report for one run."""
    rts = np.array([rt for _c, rt in request_log]) if request_log else np.zeros(0)
    rt_series = response_time_series(request_log, duration, bin_width, percentile=95.0)
    spikes = find_spikes(rt_series, sla_threshold)
    mean_rt = float(rts.mean()) if rts.size else 0.0
    std_rt = float(rts.std()) if rts.size else 0.0
    return StabilityReport(
        completed=len(request_log),
        failed=failed,
        mean_response_time=mean_rt,
        p95_response_time=float(np.percentile(rts, 95)) if rts.size else 0.0,
        p99_response_time=float(np.percentile(rts, 99)) if rts.size else 0.0,
        max_response_time=float(rts.max()) if rts.size else 0.0,
        rt_coefficient_of_variation=std_rt / mean_rt if mean_rt > 0 else 0.0,
        sla_violation_fraction=sla_violation_fraction(request_log, sla_threshold),
        spike_episodes=len(spikes),
        spike_seconds=sum(s.duration for s in spikes),
        throughput_mean=len(request_log) / duration if duration > 0 else 0.0,
        vm_seconds=vm_seconds,
    )
